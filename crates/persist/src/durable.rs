//! [`DurableMap`]: the durability decorator any versioned backend opts into.
//!
//! `DurableMap<M>` wraps a [`TxMapVersioned`] backend and logs every
//! *effective* top-level mutation (insert that changed the map, delete,
//! compare-and-delete, move) as a redo record stamped with the STM commit
//! version. The record is enqueued from a
//! [`sf_stm::Transaction::on_commit_versioned`] hook of the winning attempt
//! — right after the commit point, before the operation returns — and the
//! operation then waits on the group-commit writer, so **when a mutating
//! call returns, its record is durable** (unless the log runs in buffered
//! mode, `group == 0`).
//!
//! Lookups and scans pass straight through: durability costs nothing on the
//! read path.
//!
//! ## Checkpoints
//!
//! [`DurableMap::checkpoint`] bounds recovery time: it seals the current log
//! segment ([`Wal::rotate`]), takes one atomic
//! [`TxMapVersioned::snapshot_versioned`] of the backend (a PR 2 read-only
//! range scan, which also yields the snapshot's serialization version), and
//! durably installs the image before deleting the sealed segments. The
//! ordering makes the race with concurrent writers safe:
//!
//! * a record that landed in a sealed segment was enqueued before the
//!   rotation, so its transaction committed before the snapshot began and
//!   the image covers it — deleting the segment loses nothing;
//! * a record enqueued after the rotation lives in the surviving segment;
//!   if its version is `<=` the snapshot version it is skipped at replay
//!   (the image already reflects it), otherwise it is replayed on top.
//!
//! ## Sharded composition
//!
//! A sharded durable map is `ShardedMap<DurableMap<M>>` — **one log per
//! shard**, preserving the sharded map's property that shards share no
//! synchronization. [`sharded_optimized`] / [`sharded_portable`] build one
//! (with per-shard `shard-<i>` directories), [`checkpoint_sharded`]
//! checkpoints every shard under
//! [`sf_tree::ShardedMap::pause_maintenance`], and
//! [`crate::recovery::recover_sharded`] merges the per-shard recoveries.

use std::io;
use std::ops::RangeInclusive;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use sf_stm::{Stm, StmConfig, ThreadCtx};
use sf_tree::maintenance::{MaintenanceConfig, MaintenanceHandle};
use sf_tree::{
    intern_label, Key, OptSpecFriendlyTree, ShardParts, ShardedHandle, ShardedMap,
    SpecFriendlyTree, TxMap, TxMapVersioned, Value,
};

use crate::log::{Wal, WalOptions};
use crate::record::{WalOp, WalRecord};
use crate::recovery::{recover, shard_dir, Recovery};

/// Per-thread handle of a [`DurableMap`]: the inner backend's handle plus a
/// slot the commit hook uses to hand the enqueued record's sequence number
/// back to the operation (hooks may only capture owned state).
pub struct DurableHandle<M: TxMap> {
    inner: M::Handle,
    ticket: Arc<AtomicU64>,
}

impl<M: TxMap> DurableHandle<M> {
    /// The wrapped backend handle (e.g. to drive the inner map directly in
    /// tests; mutations through it bypass the log).
    pub fn inner_mut(&mut self) -> &mut M::Handle {
        &mut self.inner
    }
}

/// Report of one completed checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport {
    /// The snapshot's serialization version (records above it stay live).
    pub version: u64,
    /// Entries written to the image.
    pub entries: u64,
    /// The log segment sealed and (after install) deleted through.
    pub sealed_segment: u64,
}

/// A durability decorator over any [`TxMapVersioned`] backend. See the
/// [module docs](self).
pub struct DurableMap<M: TxMap> {
    inner: Arc<M>,
    wal: Arc<Wal>,
    options: WalOptions,
    /// Serializes checkpoints (explicit and automatic).
    checkpoint_lock: Mutex<()>,
    label: &'static str,
}

impl<M: TxMapVersioned + 'static> DurableMap<M> {
    /// Open a durable map over `inner`, recovering any existing
    /// `checkpoint + log` state in `dir` **into** the (expected-fresh) inner
    /// map first: recovered entries are bulk-inserted through a bootstrap
    /// handle (bypassing the log — they are already durable) and `stm`'s
    /// clock is advanced past the highest recovered version so new commits
    /// log strictly above it. A torn tail left by the crash is durably
    /// discarded ([`crate::recovery::repair_torn_tail`]) — otherwise a
    /// *second* crash would hit the stale corruption and throw away every
    /// segment this incarnation writes. Appending resumes in a fresh
    /// segment.
    pub fn open(
        inner: Arc<M>,
        stm: &Arc<Stm>,
        dir: impl Into<PathBuf>,
        options: WalOptions,
    ) -> io::Result<(DurableMap<M>, Recovery)> {
        let dir = dir.into();
        let recovery = recover(&dir)?;
        crate::recovery::repair_torn_tail(&dir, &recovery)?;
        if !recovery.entries.is_empty() {
            // Batch the bootstrap: one transaction per chunk, not per entry —
            // restart time is exactly what checkpoints exist to bound.
            let mut bootstrap = inner.register(stm.register());
            for chunk in recovery.entries.chunks(64) {
                inner.atomically_versioned(&mut bootstrap, |map, tx| {
                    for &(key, value) in chunk {
                        map.tx_insert(tx, key, value)?;
                    }
                    Ok(())
                });
            }
        }
        stm.clock().advance_to(recovery.last_version);
        let wal = Wal::open(dir, recovery.last_segment + 1, options.group)?;
        let label = intern_label(format!("{}+wal", inner.name()));
        Ok((
            DurableMap {
                inner,
                wal: Arc::new(wal),
                options,
                checkpoint_lock: Mutex::new(()),
                label,
            },
            recovery,
        ))
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<M> {
        &self.inner
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        self.wal.dir()
    }

    /// Records logged since the last completed checkpoint.
    pub fn records_since_checkpoint(&self) -> u64 {
        self.wal.records_since_checkpoint()
    }

    /// Write and sync every buffered record (meaningful in buffered mode,
    /// `group == 0`; a no-op otherwise because mutations sync themselves).
    pub fn flush(&self) -> io::Result<()> {
        self.wal.flush()
    }

    /// Checkpoint: seal the log, snapshot the backend atomically, durably
    /// install the image, and truncate the sealed log prefix. Safe against
    /// concurrent mutators (see the [module docs](self)); concurrent
    /// checkpoints serialize.
    pub fn checkpoint(&self, handle: &mut DurableHandle<M>) -> io::Result<CheckpointReport> {
        let _guard = self
            .checkpoint_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.checkpoint_locked(&mut handle.inner)
    }

    fn checkpoint_locked(&self, inner_handle: &mut M::Handle) -> io::Result<CheckpointReport> {
        let sealed = self.wal.rotate()?;
        let (entries, version) = self.inner.snapshot_versioned(inner_handle);
        self.wal.install_checkpoint(version, &entries, sealed)?;
        Ok(CheckpointReport {
            version,
            entries: entries.len() as u64,
            sealed_segment: sealed,
        })
    }

    /// After a logged mutation: wait for its record's durability, then
    /// trigger an automatic checkpoint when the threshold is crossed (and
    /// no other thread is already checkpointing).
    fn finish_mutation(&self, handle: &mut DurableHandle<M>) {
        let seq = handle.ticket.swap(0, Ordering::Relaxed);
        if seq == 0 {
            return;
        }
        self.wal.sync_to(seq);
        if self.options.auto_checkpoint > 0
            && self.wal.records_since_checkpoint() >= self.options.auto_checkpoint
        {
            if let Ok(_guard) = self.checkpoint_lock.try_lock() {
                self.checkpoint_locked(&mut handle.inner)
                    .expect("automatic checkpoint failed");
            }
        }
    }
}

impl<M: TxMapVersioned + 'static> TxMap for DurableMap<M> {
    type Handle = DurableHandle<M>;

    fn register(&self, ctx: ThreadCtx) -> DurableHandle<M> {
        DurableHandle {
            inner: self.inner.register(ctx),
            ticket: Arc::new(AtomicU64::new(0)),
        }
    }

    fn contains(&self, handle: &mut DurableHandle<M>, key: Key) -> bool {
        self.inner.contains(&mut handle.inner, key)
    }

    fn get(&self, handle: &mut DurableHandle<M>, key: Key) -> Option<Value> {
        self.inner.get(&mut handle.inner, key)
    }

    fn insert(&self, handle: &mut DurableHandle<M>, key: Key, value: Value) -> bool {
        let wal = Arc::clone(&self.wal);
        let ticket = Arc::clone(&handle.ticket);
        let (changed, _version) =
            self.inner
                .atomically_versioned(&mut handle.inner, move |map, tx| {
                    let changed = map.tx_insert(tx, key, value)?;
                    if changed {
                        let wal = Arc::clone(&wal);
                        let ticket = Arc::clone(&ticket);
                        tx.on_commit_versioned(move |version| {
                            let seq = wal.enqueue(WalRecord {
                                version,
                                op: WalOp::Insert { key, value },
                            });
                            ticket.store(seq, Ordering::Relaxed);
                        });
                    }
                    Ok(changed)
                });
        self.finish_mutation(handle);
        changed
    }

    fn delete(&self, handle: &mut DurableHandle<M>, key: Key) -> bool {
        let wal = Arc::clone(&self.wal);
        let ticket = Arc::clone(&handle.ticket);
        let (changed, _version) =
            self.inner
                .atomically_versioned(&mut handle.inner, move |map, tx| {
                    let changed = map.tx_delete(tx, key)?;
                    if changed {
                        let wal = Arc::clone(&wal);
                        let ticket = Arc::clone(&ticket);
                        tx.on_commit_versioned(move |version| {
                            let seq = wal.enqueue(WalRecord {
                                version,
                                op: WalOp::Delete { key },
                            });
                            ticket.store(seq, Ordering::Relaxed);
                        });
                    }
                    Ok(changed)
                });
        self.finish_mutation(handle);
        changed
    }

    fn delete_if(&self, handle: &mut DurableHandle<M>, key: Key, expected: Value) -> bool {
        let wal = Arc::clone(&self.wal);
        let ticket = Arc::clone(&handle.ticket);
        let (changed, _version) =
            self.inner
                .atomically_versioned(&mut handle.inner, move |map, tx| {
                    let changed = map.tx_delete_if(tx, key, expected)?;
                    if changed {
                        let wal = Arc::clone(&wal);
                        let ticket = Arc::clone(&ticket);
                        tx.on_commit_versioned(move |version| {
                            let seq = wal.enqueue(WalRecord {
                                version,
                                op: WalOp::Delete { key },
                            });
                            ticket.store(seq, Ordering::Relaxed);
                        });
                    }
                    Ok(changed)
                });
        self.finish_mutation(handle);
        changed
    }

    fn move_entry(&self, handle: &mut DurableHandle<M>, from: Key, to: Key) -> bool {
        let wal = Arc::clone(&self.wal);
        let ticket = Arc::clone(&handle.ticket);
        let (moved, _version) =
            self.inner
                .atomically_versioned(&mut handle.inner, move |map, tx| {
                    if from == to {
                        // A self-move is a membership test: nothing to log.
                        return map.tx_contains(tx, from);
                    }
                    let value = match map.tx_get(tx, from)? {
                        Some(value) => value,
                        None => return Ok(false),
                    };
                    let moved = map.tx_move(tx, from, to)?;
                    if moved {
                        let wal = Arc::clone(&wal);
                        let ticket = Arc::clone(&ticket);
                        // One record for both halves: a torn tail can never
                        // recover the delete without the insert.
                        tx.on_commit_versioned(move |version| {
                            let seq = wal.enqueue(WalRecord {
                                version,
                                op: WalOp::Move { from, to, value },
                            });
                            ticket.store(seq, Ordering::Relaxed);
                        });
                    }
                    Ok(moved)
                });
        self.finish_mutation(handle);
        moved
    }

    fn range_collect(
        &self,
        handle: &mut DurableHandle<M>,
        range: RangeInclusive<Key>,
    ) -> Vec<(Key, Value)> {
        self.inner.range_collect(&mut handle.inner, range)
    }

    fn len(&self, handle: &mut DurableHandle<M>) -> usize {
        self.inner.len(&mut handle.inner)
    }

    fn len_quiescent(&self) -> usize {
        self.inner.len_quiescent()
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

/// Build a sharded durable map: `shards` inner maps produced by `make`
/// (returning each shard's STM, map, and optional maintenance thread), each
/// wrapped in a [`DurableMap`] logging to `base/shard-<i>`, recovering any
/// existing state. Returns the composed map and the merged recovery report.
pub fn sharded_with<M>(
    shards: usize,
    base: &Path,
    options: WalOptions,
    mut make: impl FnMut(usize) -> (Arc<Stm>, Arc<M>, Option<MaintenanceHandle>),
) -> io::Result<(ShardedMap<DurableMap<M>>, Recovery)>
where
    M: TxMapVersioned + 'static,
    M::Handle: Send,
{
    let mut merged = Recovery::default();
    let mut parts: Vec<Option<ShardParts<DurableMap<M>>>> = Vec::with_capacity(shards);
    for shard in 0..shards {
        let (stm, map, maintenance) = make(shard);
        let (durable, one) = DurableMap::open(map, &stm, shard_dir(base, shard), options)?;
        merged.absorb(one);
        parts.push(Some(ShardParts {
            stm,
            map: Arc::new(durable),
            maintenance,
        }));
    }
    merged.entries.sort_unstable();
    let map = ShardedMap::new_with(shards, |shard| {
        parts[shard]
            .take()
            .expect("each shard is built exactly once")
    });
    Ok((map, merged))
}

/// Maintenance tuning shared by the sharded durable builders (matching
/// [`ShardedMap::optimized`]).
fn sharded_maintenance_config() -> MaintenanceConfig {
    MaintenanceConfig {
        pass_delay: Duration::from_micros(200),
        ..MaintenanceConfig::default()
    }
}

/// A sharded durable **optimized** speculation-friendly tree: per shard, one
/// STM instance, one clone-based maintenance thread, and one log under
/// `base/shard-<i>`.
pub fn sharded_optimized(
    shards: usize,
    stm_config: StmConfig,
    base: &Path,
    options: WalOptions,
) -> io::Result<(ShardedMap<DurableMap<OptSpecFriendlyTree>>, Recovery)> {
    sharded_with(shards, base, options, |_| {
        let stm = Stm::new(stm_config.clone());
        let map = Arc::new(OptSpecFriendlyTree::new());
        let maintenance = map.start_maintenance_with(stm.register(), sharded_maintenance_config());
        (stm, map, Some(maintenance))
    })
}

/// A sharded durable **portable** speculation-friendly tree (classic
/// in-place rotations per shard).
pub fn sharded_portable(
    shards: usize,
    stm_config: StmConfig,
    base: &Path,
    options: WalOptions,
) -> io::Result<(ShardedMap<DurableMap<SpecFriendlyTree>>, Recovery)> {
    sharded_with(shards, base, options, |_| {
        let stm = Stm::new(stm_config.clone());
        let map = Arc::new(SpecFriendlyTree::new());
        let maintenance = map.start_maintenance_with(stm.register(), sharded_maintenance_config());
        (stm, map, Some(maintenance))
    })
}

/// Checkpoint every shard of a sharded durable map with all rotator threads
/// parked ([`ShardedMap::pause_maintenance`]): full-tree snapshot scans and
/// structural maintenance would otherwise fight over the same nodes, which
/// on a loaded host turns the snapshot into an abort storm. Each shard's
/// checkpoint is still individually safe against concurrent *mutators* —
/// pausing maintenance is a throughput choice, not a correctness one.
pub fn checkpoint_sharded<M>(
    map: &ShardedMap<DurableMap<M>>,
    handle: &mut ShardedHandle<DurableMap<M>>,
) -> io::Result<Vec<CheckpointReport>>
where
    M: TxMapVersioned + 'static,
    M::Handle: Send,
{
    let _paused = map.pause_maintenance();
    let mut reports = Vec::with_capacity(map.shard_count());
    for shard in 0..map.shard_count() {
        let durable = Arc::clone(map.shard_map(shard));
        reports.push(durable.checkpoint(handle.shard_handle_mut(shard))?);
    }
    Ok(reports)
}
