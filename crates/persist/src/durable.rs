//! [`DurableMap`]: the durability decorator any versioned backend opts into.
//!
//! `DurableMap<M>` wraps a [`TxMapVersioned`] backend and logs every
//! *effective* top-level mutation (insert that changed the map, delete,
//! compare-and-delete, move) as a redo record stamped with the STM commit
//! version. The record is enqueued from a
//! [`sf_stm::Transaction::on_commit_versioned`] hook of the winning attempt
//! — right after the commit point, before the operation returns — and the
//! operation then waits on the group-commit writer, so **when a mutating
//! call returns, its record is durable** (unless the log runs in buffered
//! mode, `group == 0`).
//!
//! Lookups and scans pass straight through: durability costs nothing on the
//! read path.
//!
//! ## Checkpoints
//!
//! [`DurableMap::checkpoint`] bounds recovery time: it seals the current log
//! segment ([`Wal::rotate`]), takes one atomic
//! [`TxMapVersioned::snapshot_versioned`] of the backend (a PR 2 read-only
//! range scan, which also yields the snapshot's serialization version), and
//! durably installs the image before deleting the sealed segments. The
//! ordering makes the race with concurrent writers safe:
//!
//! * a record that landed in a sealed segment was enqueued before the
//!   rotation, so its transaction committed before the snapshot began and
//!   the image covers it — deleting the segment loses nothing;
//! * a record enqueued after the rotation lives in the surviving segment;
//!   if its version is `<=` the snapshot version it is skipped at replay
//!   (the image already reflects it), otherwise it is replayed on top.
//!
//! ## Sharded composition
//!
//! A sharded durable map is `ShardedMap<DurableMap<M>>` — **one log per
//! shard**, preserving the sharded map's property that shards share no
//! synchronization. [`sharded_optimized`] / [`sharded_portable`] build one
//! (with per-shard `shard-<i>` directories), [`checkpoint_sharded`]
//! checkpoints every shard under
//! [`sf_tree::ShardedMap::pause_maintenance`], and
//! [`crate::recovery::recover_sharded`] merges the per-shard recoveries.
//!
//! A **cross-shard move** spans two shard logs, so neither log alone can
//! make it atomic. The composition closes the crash window with a
//! two-phase intent protocol driven through the [`TxMap`] move hooks: the
//! source shard fsyncs a `MoveIntent` before either half commits, both
//! halves are logged stamped with a shared move id (`MoveInsert` /
//! `MoveDelete`), and a `MoveCommit` marks the move resolved; recovery
//! joins the logs by move id and deterministically completes or rolls back
//! an interrupted move ([`crate::recovery`]). While a move is in flight,
//! both shards' checkpoint locks are held so a checkpoint can never
//! truncate an unresolved intent or half out of a log. Automatic
//! checkpoints therefore cannot fire from *inside* the move protocol — but
//! they are not lost: in writer-thread mode the trigger stays **deferred**
//! in the log's writer thread, which retries with a `try_lock` on every
//! wakeup and checkpoints the moment the move scope releases the lock, so
//! even a purely move-driven durable workload checkpoints automatically.
//!
//! ## Checkpoint triggers
//!
//! With `SF_WAL_WRITER=thread` (the default), the auto-checkpoint triggers
//! — a size threshold ([`WalOptions::auto_checkpoint`], `SF_WAL_CKPT`) and
//! a time interval ([`WalOptions::checkpoint_interval`], `SF_WAL_CKPT_MS`)
//! — are evaluated by the log's writer thread between flush batches, via a
//! hook installed at open. Mutators never run a checkpoint inline; the
//! whole snapshot + install happens off the hot path. Under the leader
//! fallback (and in buffered mode) the pre-writer behavior remains: the
//! size trigger is checked inline after each durable mutation.

use std::io;
use std::ops::RangeInclusive;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use std::time::Duration;

use sf_obs::{EventKind, FlightRecorder, Sampler};
use sf_stm::{Stm, StmConfig, ThreadCtx, Transaction, TxResult};
use sf_tree::maintenance::{MaintenanceConfig, MaintenanceHandle};
use sf_tree::{
    intern_label, Key, OptSpecFriendlyTree, ShardParts, ShardedHandle, ShardedMap,
    SpecFriendlyTree, TxMap, TxMapVersioned, Value,
};

use crate::log::{Wal, WalOptions, WriterMode};
use crate::record::{WalOp, WalRecord};
use crate::recovery::{recover, recover_sharded_parts, shard_dir, Recovery};
use crate::stats;

/// Per-thread handle of a [`DurableMap`]: the inner backend's handle plus a
/// slot the commit hook uses to hand the enqueued record's sequence number
/// back to the operation (hooks may only capture owned state).
pub struct DurableHandle<M: TxMap> {
    inner: M::Handle,
    ticket: Arc<AtomicU64>,
    /// Decimates the commit path's enqueue-to-durable wait timing
    /// (`SF_OBS_SAMPLE`), so the sync path only reads the clock 1-in-N.
    sampler: Sampler,
}

impl<M: TxMap> DurableHandle<M> {
    /// The wrapped backend handle (e.g. to drive the inner map directly in
    /// tests; mutations through it bypass the log).
    pub fn inner_mut(&mut self) -> &mut M::Handle {
        &mut self.inner
    }
}

/// Report of one completed checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport {
    /// The snapshot's serialization version (records above it stay live).
    pub version: u64,
    /// Entries written to the image.
    pub entries: u64,
    /// The log segment sealed and (after install) deleted through.
    pub sealed_segment: u64,
}

/// A durability decorator over any [`TxMapVersioned`] backend. See the
/// [module docs](self).
pub struct DurableMap<M: TxMap> {
    inner: Arc<M>,
    wal: Arc<Wal>,
    options: WalOptions,
    /// Serializes checkpoints (explicit, inline automatic, and the writer
    /// thread's trigger hook — which `try_lock`s it, so a held lock defers
    /// rather than blocks the writer). Shared with the hook, hence `Arc`.
    checkpoint_lock: Arc<Mutex<()>>,
    label: &'static str,
}

/// One-time loud warning that buffered mode (`group == 0`) forfeits the
/// durability contract in a context that visibly relies on it (crash drills,
/// the cross-shard move protocol's fsync ordering).
fn warn_buffered_once(context: &str) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "sf-persist: WARNING: WAL group=0 (buffered mode) provides NO per-operation \
             durability, but {context}; a crash loses the buffered tail. \
             Set SF_WAL_GROUP>0 if this run is meant to test durability."
        );
    });
}

impl<M: TxMapVersioned + 'static> DurableMap<M> {
    /// Open a durable map over `inner`, recovering any existing
    /// `checkpoint + log` state in `dir` **into** the (expected-fresh) inner
    /// map first: recovered entries are bulk-inserted through a bootstrap
    /// handle (bypassing the log — they are already durable) and `stm`'s
    /// clock is advanced past the highest recovered version so new commits
    /// log strictly above it. A torn tail left by the crash is durably
    /// discarded ([`crate::recovery::repair_torn_tail`]) — otherwise a
    /// *second* crash would hit the stale corruption and throw away every
    /// segment this incarnation writes. Appending resumes in a fresh
    /// segment.
    pub fn open(
        inner: Arc<M>,
        stm: &Arc<Stm>,
        dir: impl Into<PathBuf>,
        options: WalOptions,
    ) -> io::Result<(DurableMap<M>, Recovery)> {
        let dir = dir.into();
        let recovery = recover(&dir)?;
        let map = DurableMap::open_recovered(inner, stm, dir, options, &recovery, Vec::new())?;
        Ok((map, recovery))
    }

    /// [`DurableMap::open`] with a precomputed (possibly cross-shard
    /// resolved) recovery, plus `resolution` records to append durably to
    /// the fresh segment *before* any new mutation can be logged — this is
    /// how [`sharded_with`] persists the outcome of the cross-log move
    /// resolution so a later crash replays to the same state.
    fn open_recovered(
        inner: Arc<M>,
        stm: &Arc<Stm>,
        dir: PathBuf,
        options: WalOptions,
        recovery: &Recovery,
        resolution: Vec<WalRecord>,
    ) -> io::Result<DurableMap<M>> {
        crate::recovery::repair_torn_tail(&dir, recovery)?;
        let wal = Wal::open(dir, recovery.last_segment + 1, options)?;
        if !resolution.is_empty() {
            for record in resolution {
                wal.enqueue(record);
            }
            wal.flush()?;
        }
        if !recovery.entries.is_empty() {
            // Batch the bootstrap: one transaction per chunk, not per entry —
            // restart time is exactly what checkpoints exist to bound.
            let mut bootstrap = inner.register(stm.register());
            for chunk in recovery.entries.chunks(64) {
                inner.atomically_versioned(&mut bootstrap, |map, tx| {
                    for &(key, value) in chunk {
                        map.tx_insert(tx, key, value)?;
                    }
                    Ok(())
                });
            }
        }
        stm.clock().advance_to(recovery.last_version);
        let label = intern_label(format!("{}+wal", inner.name()));
        let checkpoint_lock = Arc::new(Mutex::named((), "durable.checkpoint"));
        if options.group == 0 && std::env::var_os("SF_RECOVERY_SMOKE").is_some() {
            warn_buffered_once("SF_RECOVERY_SMOKE is set (a crash drill is running)");
        }
        let triggers_in_writer = options.group > 0
            && options.writer == WriterMode::Thread
            && (options.auto_checkpoint > 0 || options.checkpoint_interval.is_some());
        if triggers_in_writer {
            // The writer thread evaluates the size/time triggers and calls
            // this hook between batches. The hook owns its own backend
            // handle and shares only the checkpoint lock with the map — it
            // must NOT capture the Wal (the writer thread holding an
            // `Arc<Wal>` would keep its own shutdown from ever running).
            let hook_inner = Arc::clone(&inner);
            let mut hook_handle = hook_inner.register(stm.register());
            let hook_lock = Arc::clone(&checkpoint_lock);
            wal.set_checkpoint_hook(Box::new(move |shared| {
                let guard = match hook_lock.try_lock() {
                    Some(guard) => guard,
                    // Held by a move scope or an explicit checkpoint:
                    // stay deferred, the writer retries on its next wakeup.
                    None => return false,
                };
                // rotate() drains inline on the writer thread; the snapshot
                // is a read-only STM transaction (no log records, no
                // sync_to), so the hook can never wait on the writer itself.
                let result: io::Result<()> = (|| {
                    let sealed = shared.rotate()?;
                    let (entries, version) = hook_inner.snapshot_versioned(&mut hook_handle);
                    shared.install_checkpoint(version, &entries, sealed)?;
                    Ok(())
                })();
                drop(guard);
                if let Err(error) = result {
                    // Never panic here — a dead writer thread would hang
                    // every parked sync_to waiter. The log itself still
                    // holds the records; only truncation is lost.
                    eprintln!("sf-persist: trigger-driven checkpoint failed: {error}");
                }
                true
            }));
        }
        Ok(DurableMap {
            inner,
            wal: Arc::new(wal),
            options,
            checkpoint_lock,
            label,
        })
    }

    /// Durably append protocol control records (recovery-resolution commit
    /// markers) outside any mutation path.
    pub(crate) fn append_control(&self, records: Vec<WalRecord>) -> io::Result<()> {
        for record in records {
            self.wal.enqueue(record);
        }
        self.wal.flush()
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<M> {
        &self.inner
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        self.wal.dir()
    }

    /// Records logged since the last completed checkpoint.
    pub fn records_since_checkpoint(&self) -> u64 {
        self.wal.records_since_checkpoint()
    }

    /// Write and sync every buffered record (meaningful in buffered mode,
    /// `group == 0`; a no-op otherwise because mutations sync themselves).
    pub fn flush(&self) -> io::Result<()> {
        self.wal.flush()
    }

    /// Checkpoint: seal the log, snapshot the backend atomically, durably
    /// install the image, and truncate the sealed log prefix. Safe against
    /// concurrent mutators (see the [module docs](self)); concurrent
    /// checkpoints serialize.
    pub fn checkpoint(&self, handle: &mut DurableHandle<M>) -> io::Result<CheckpointReport> {
        let _guard = self.checkpoint_lock.lock();
        self.checkpoint_locked(&mut handle.inner)
    }

    fn checkpoint_locked(&self, inner_handle: &mut M::Handle) -> io::Result<CheckpointReport> {
        let sealed = self.wal.rotate()?;
        let (entries, version) = self.inner.snapshot_versioned(inner_handle);
        self.wal.install_checkpoint(version, &entries, sealed)?;
        Ok(CheckpointReport {
            version,
            entries: entries.len() as u64,
            sealed_segment: sealed,
        })
    }

    /// Run one logged mutation: execute `body` as the inner map's versioned
    /// transaction and, when it reports an effective change, enqueue `op`
    /// stamped with the winning attempt's commit version from its commit
    /// hook, then wait for the record's durability (via
    /// [`DurableMap::finish_mutation`]).
    fn logged_mutation(
        &self,
        handle: &mut DurableHandle<M>,
        op: WalOp,
        mut body: impl for<'t> FnMut(&'t M, &mut Transaction<'t>) -> TxResult<bool>,
    ) -> bool {
        let wal = Arc::clone(&self.wal);
        let ticket = Arc::clone(&handle.ticket);
        let (changed, _version) =
            self.inner
                .atomically_versioned(&mut handle.inner, move |map, tx| {
                    let changed = body(map, tx)?;
                    if changed {
                        let wal = Arc::clone(&wal);
                        let ticket = Arc::clone(&ticket);
                        tx.on_commit_versioned(move |version| {
                            let seq = wal.enqueue(WalRecord { version, op });
                            // sf-lint: allow(relaxed-atomic, same-thread handoff; the mutator that stored the ticket reads it back in finish_mutation)
                            ticket.store(seq, Ordering::Relaxed);
                        });
                    }
                    Ok(changed)
                });
        self.finish_mutation(handle);
        changed
    }

    /// After a logged mutation: wait for its record's durability. Under the
    /// leader fallback (and buffered mode) this also runs the inline
    /// size-triggered automatic checkpoint; in writer-thread mode the
    /// triggers live in the writer thread instead, so the mutator returns
    /// the moment its record is durable.
    fn finish_mutation(&self, handle: &mut DurableHandle<M>) {
        // sf-lint: allow(relaxed-atomic, same-thread handoff; reads back the ticket this thread stored in its commit hook)
        let seq = handle.ticket.swap(0, Ordering::Relaxed);
        if seq == 0 {
            return;
        }
        if handle.sampler.tick() {
            let started = std::time::Instant::now();
            self.wal.sync_to(seq);
            self.wal.stats().note_sync_wait(started.elapsed());
        } else {
            self.wal.sync_to(seq);
        }
        let triggers_in_writer =
            self.options.group > 0 && self.options.writer == WriterMode::Thread;
        if !triggers_in_writer
            && self.options.auto_checkpoint > 0
            && self.wal.records_since_checkpoint() >= self.options.auto_checkpoint
        {
            if let Some(_guard) = self.checkpoint_lock.try_lock() {
                self.checkpoint_locked(&mut handle.inner)
                    .expect("automatic checkpoint failed");
            }
        }
    }
}

impl<M: TxMapVersioned + 'static> TxMap for DurableMap<M> {
    type Handle = DurableHandle<M>;

    fn register(&self, ctx: ThreadCtx) -> DurableHandle<M> {
        DurableHandle {
            inner: self.inner.register(ctx),
            ticket: Arc::new(AtomicU64::new(0)),
            sampler: Sampler::from_env(),
        }
    }

    fn contains(&self, handle: &mut DurableHandle<M>, key: Key) -> bool {
        self.inner.contains(&mut handle.inner, key)
    }

    fn get(&self, handle: &mut DurableHandle<M>, key: Key) -> Option<Value> {
        self.inner.get(&mut handle.inner, key)
    }

    fn insert(&self, handle: &mut DurableHandle<M>, key: Key, value: Value) -> bool {
        self.logged_mutation(handle, WalOp::Insert { key, value }, move |map, tx| {
            map.tx_insert(tx, key, value)
        })
    }

    fn delete(&self, handle: &mut DurableHandle<M>, key: Key) -> bool {
        self.logged_mutation(handle, WalOp::Delete { key }, move |map, tx| {
            map.tx_delete(tx, key)
        })
    }

    fn delete_if(&self, handle: &mut DurableHandle<M>, key: Key, expected: Value) -> bool {
        self.logged_mutation(handle, WalOp::Delete { key }, move |map, tx| {
            map.tx_delete_if(tx, key, expected)
        })
    }

    fn move_entry(&self, handle: &mut DurableHandle<M>, from: Key, to: Key) -> bool {
        let wal = Arc::clone(&self.wal);
        let ticket = Arc::clone(&handle.ticket);
        let (moved, _version) =
            self.inner
                .atomically_versioned(&mut handle.inner, move |map, tx| {
                    if from == to {
                        // A self-move is a membership test: nothing to log.
                        return map.tx_contains(tx, from);
                    }
                    let value = match map.tx_get(tx, from)? {
                        Some(value) => value,
                        None => return Ok(false),
                    };
                    let moved = map.tx_move(tx, from, to)?;
                    if moved {
                        let wal = Arc::clone(&wal);
                        let ticket = Arc::clone(&ticket);
                        // One record for both halves: a torn tail can never
                        // recover the delete without the insert.
                        tx.on_commit_versioned(move |version| {
                            let seq = wal.enqueue(WalRecord {
                                version,
                                op: WalOp::Move { from, to, value },
                            });
                            // sf-lint: allow(relaxed-atomic, same-thread handoff; the mutator that stored the ticket reads it back in finish_mutation)
                            ticket.store(seq, Ordering::Relaxed);
                        });
                    }
                    Ok(moved)
                });
        self.finish_mutation(handle);
        moved
    }

    /// Source-shard scope of a cross-shard move: fsync a
    /// [`WalOp::MoveIntent`] *before* either half commits, run the
    /// completion, then fsync the [`WalOp::MoveCommit`] resolution marker.
    /// The checkpoint lock is held throughout so no checkpoint can truncate
    /// the intent out of the log while the move is unresolved (checkpoints
    /// that would fire from inside the scope use `try_lock` and simply
    /// skip). In buffered mode (`group == 0`) the intent is only buffered:
    /// the log forfeits per-operation durability there, and with it the
    /// cross-shard crash-atomicity guarantee — the recovery join relies on
    /// the protocol's fsync ordering, which buffered mode does not perform.
    fn move_source_scope(
        &self,
        move_id: u64,
        peer: usize,
        from: Key,
        to: Key,
        value: Value,
        body: &mut dyn FnMut() -> bool,
    ) -> bool {
        if self.options.group == 0 {
            warn_buffered_once(
                "a cross-shard move is running, whose crash atomicity relies on fsync ordering",
            );
        }
        crate::chk::sched_point(crate::chk::SchedEvent::Move);
        let _guard = self.checkpoint_lock.lock();
        let seq = self.wal.enqueue(WalRecord {
            version: 0,
            op: WalOp::MoveIntent {
                move_id,
                peer_shard: peer as u64,
                from,
                to,
                value,
            },
        });
        self.wal.sync_to(seq);
        stats::note_move_intent();
        FlightRecorder::global().record(EventKind::MoveIntent, move_id, from);
        let moved = body();
        // The marker carries the maximum version so the group-commit
        // writer's within-batch version sort can never place it ahead of
        // the move's own stamped halves in the file: a torn batch write
        // (buffered mode puts the whole move in one batch) that kept the
        // marker but lost the delete half would otherwise commit a
        // duplicate forever. Recovery ignores marker versions entirely.
        let seq = self.wal.enqueue(WalRecord {
            version: u64::MAX,
            op: WalOp::MoveCommit { move_id },
        });
        self.wal.sync_to(seq);
        moved
    }

    /// Destination-shard scope of a cross-shard move: hold the checkpoint
    /// lock so the stamped insert half cannot be checkpoint-truncated out
    /// of this log while the source's intent is still unresolved.
    fn move_peer_scope(&self, _move_id: u64, body: &mut dyn FnMut() -> bool) -> bool {
        let _guard = self.checkpoint_lock.lock();
        body()
    }

    /// The destination half: like [`TxMap::insert`] but logged as a
    /// [`WalOp::MoveInsert`] stamped with the move id.
    fn move_insert(
        &self,
        handle: &mut DurableHandle<M>,
        move_id: u64,
        key: Key,
        value: Value,
    ) -> bool {
        let op = WalOp::MoveInsert {
            move_id,
            key,
            value,
        };
        self.logged_mutation(handle, op, move |map, tx| map.tx_insert(tx, key, value))
    }

    /// The source half (or rollback retraction): like [`TxMap::delete_if`]
    /// but logged as a [`WalOp::MoveDelete`] stamped with the move id.
    fn move_delete_if(
        &self,
        handle: &mut DurableHandle<M>,
        move_id: u64,
        key: Key,
        expected: Value,
    ) -> bool {
        self.logged_mutation(
            handle,
            WalOp::MoveDelete { move_id, key },
            move |map, tx| map.tx_delete_if(tx, key, expected),
        )
    }

    fn range_collect(
        &self,
        handle: &mut DurableHandle<M>,
        range: RangeInclusive<Key>,
    ) -> Vec<(Key, Value)> {
        self.inner.range_collect(&mut handle.inner, range)
    }

    fn len(&self, handle: &mut DurableHandle<M>) -> usize {
        self.inner.len(&mut handle.inner)
    }

    fn len_quiescent(&self) -> usize {
        self.inner.len_quiescent()
    }

    fn hot_report(&self) -> Option<sf_tree::HotReport> {
        self.inner.hot_report()
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

/// Build a sharded durable map: `shards` inner maps produced by `make`
/// (returning each shard's STM, map, and optional maintenance thread), each
/// wrapped in a [`DurableMap`] logging to `base/shard-<i>`, recovering any
/// existing state. Recovery validates the on-disk shard count, runs the
/// cross-log move resolution over all shard logs
/// ([`crate::recovery::recover_sharded`]'s join), and durably appends each
/// resolution to the affected logs before any new mutation can be logged.
/// Returns the composed map and the merged recovery report.
pub fn sharded_with<M>(
    shards: usize,
    base: &Path,
    options: WalOptions,
    mut make: impl FnMut(usize) -> (Arc<Stm>, Arc<M>, Option<MaintenanceHandle>),
) -> io::Result<(ShardedMap<DurableMap<M>>, Recovery)>
where
    M: TxMapVersioned + 'static,
    M::Handle: Send,
{
    let (per, mut plan) = recover_sharded_parts(base, shards)?;
    // Durably declare the layout before any shard state exists: a crash at
    // any later point of this open (even between the shard-directory
    // creations) leaves an unambiguous marker, so the next open validates
    // against the declaration instead of guessing from partial directories.
    crate::recovery::write_layout_marker(base, shards)?;
    // Make move-id reuse against the recovered logs impossible: stale
    // protocol records (e.g. a destination-half insert whose intent was
    // long checkpointed away) are matched by id in the recovery join, so a
    // fresh incarnation must allocate strictly above everything on disk.
    let max_move_id = per.iter().map(|r| r.max_move_id).max().unwrap_or(0);
    sf_tree::sharded::advance_move_ids(max_move_id.saturating_add(1));
    // Create every shard directory before opening any: a crash during the
    // very first open then leaves at worst a set of empty directories,
    // which the layout validation treats as absent.
    for shard in 0..shards {
        std::fs::create_dir_all(shard_dir(base, shard))?;
    }
    let mut merged = Recovery::default();
    let mut parts: Vec<Option<ShardParts<DurableMap<M>>>> = Vec::with_capacity(shards);
    for (shard, one) in per.into_iter().enumerate() {
        let (stm, map, maintenance) = make(shard);
        let state_fixes = std::mem::take(&mut plan.state[shard]);
        let durable = DurableMap::open_recovered(
            map,
            &stm,
            shard_dir(base, shard),
            options,
            &one,
            state_fixes,
        )?;
        merged.absorb(one);
        parts.push(Some(ShardParts {
            stm,
            map: Arc::new(durable),
            maintenance,
        }));
    }
    // Only now, with every shard's state fixes durable, neutralize the
    // resolved intents (the plan's ordering contract): a commit marker that
    // became durable *before* a cross-shard state fix would make a later
    // recovery skip the join while the fix is still unapplied. Crashing
    // between the two phases is safe — the next open re-runs the join,
    // which short-circuits on the now-durable stamped deletes.
    for (part, markers) in parts.iter().zip(plan.commits) {
        if !markers.is_empty() {
            part.as_ref()
                .expect("shard was just built")
                .map
                .append_control(markers)?;
        }
    }
    merged.entries.sort_unstable();
    let map = ShardedMap::new_with(shards, |shard| {
        parts[shard]
            .take()
            .expect("each shard is built exactly once")
    });
    Ok((map, merged))
}

/// Maintenance tuning shared by the sharded durable builders (matching
/// [`ShardedMap::optimized`], honouring the `SF_HOTSPOT` / `SF_HOT_DECAY`
/// environment knobs).
fn sharded_maintenance_config() -> MaintenanceConfig {
    MaintenanceConfig {
        pass_delay: Duration::from_micros(200),
        ..MaintenanceConfig::default()
    }
    .with_hotspot_env()
}

/// A sharded durable **optimized** speculation-friendly tree: per shard, one
/// STM instance, one clone-based maintenance thread, and one log under
/// `base/shard-<i>`.
pub fn sharded_optimized(
    shards: usize,
    stm_config: StmConfig,
    base: &Path,
    options: WalOptions,
) -> io::Result<(ShardedMap<DurableMap<OptSpecFriendlyTree>>, Recovery)> {
    sharded_with(shards, base, options, |_| {
        let stm = Stm::new(stm_config.clone());
        let map = Arc::new(OptSpecFriendlyTree::new());
        let maintenance = map.start_maintenance_with(stm.register(), sharded_maintenance_config());
        (stm, map, Some(maintenance))
    })
}

/// A sharded durable **portable** speculation-friendly tree (classic
/// in-place rotations per shard).
pub fn sharded_portable(
    shards: usize,
    stm_config: StmConfig,
    base: &Path,
    options: WalOptions,
) -> io::Result<(ShardedMap<DurableMap<SpecFriendlyTree>>, Recovery)> {
    sharded_with(shards, base, options, |_| {
        let stm = Stm::new(stm_config.clone());
        let map = Arc::new(SpecFriendlyTree::new());
        let maintenance = map.start_maintenance_with(stm.register(), sharded_maintenance_config());
        (stm, map, Some(maintenance))
    })
}

/// Checkpoint every shard of a sharded durable map with all rotator threads
/// parked ([`ShardedMap::pause_maintenance`]): full-tree snapshot scans and
/// structural maintenance would otherwise fight over the same nodes, which
/// on a loaded host turns the snapshot into an abort storm. Each shard's
/// checkpoint is still individually safe against concurrent *mutators* —
/// pausing maintenance is a throughput choice, not a correctness one.
pub fn checkpoint_sharded<M>(
    map: &ShardedMap<DurableMap<M>>,
    handle: &mut ShardedHandle<DurableMap<M>>,
) -> io::Result<Vec<CheckpointReport>>
where
    M: TxMapVersioned + 'static,
    M::Handle: Send,
{
    let _paused = map.pause_maintenance();
    let mut reports = Vec::with_capacity(map.shard_count());
    for shard in 0..map.shard_count() {
        let durable = Arc::clone(map.shard_map(shard));
        reports.push(durable.checkpoint(handle.shard_handle_mut(shard))?);
    }
    Ok(reports)
}
