//! Process-wide WAL counters, in the style of [`sf_stm::StatsSnapshot`].
//!
//! Every log instance in the process (one per durable map, one per shard of
//! a durable sharded map) feeds the same counters, so a harness can report
//! the aggregate durability work of a run next to the STM statistics. The
//! bench binaries snapshot the counters around the measured phase and emit
//! the delta in their `SF_JSON=1` line.

use std::sync::atomic::{AtomicU64, Ordering};

static RECORDS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static BATCHES: AtomicU64 = AtomicU64::new(0);
static WRITER_BATCHES: AtomicU64 = AtomicU64::new(0);
static MAX_RING_DEPTH: AtomicU64 = AtomicU64::new(0);
static CHECKPOINTS: AtomicU64 = AtomicU64::new(0);
static REPLAYED: AtomicU64 = AtomicU64::new(0);
static MOVE_INTENTS: AtomicU64 = AtomicU64::new(0);
static MOVES_RESOLVED: AtomicU64 = AtomicU64::new(0);

/// Immutable view of the process-wide WAL counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Redo records appended to any log.
    pub records: u64,
    /// Bytes written to any log segment (frames, excluding checkpoints).
    pub bytes: u64,
    /// Group-commit flush batches (one write syscall + optional sync each),
    /// regardless of who flushed them.
    pub batches: u64,
    /// The subset of `batches` flushed by a dedicated writer thread (the
    /// `SF_WAL_WRITER=thread` path). Zero under the leader fallback and in
    /// buffered mode.
    pub writer_batches: u64,
    /// High-water mark of the submission ring's depth (records queued behind
    /// the writer at an enqueue). A gauge, not a counter: `delta_since`
    /// keeps the later snapshot's value.
    pub max_ring_depth: u64,
    /// Completed checkpoints.
    pub checkpoints: u64,
    /// Records applied by recovery replays.
    pub replayed: u64,
    /// Cross-shard move intents durably logged (the two-phase protocol's
    /// first fsync).
    pub move_intents: u64,
    /// Orphaned move intents the cross-log recovery resolution completed or
    /// rolled back.
    pub moves_resolved: u64,
}

impl WalStats {
    /// Counter-wise difference against an earlier snapshot (saturating, so a
    /// concurrent [`reset`] cannot underflow). `max_ring_depth` is a gauge
    /// and keeps the later snapshot's high-water mark.
    pub fn delta_since(&self, earlier: &WalStats) -> WalStats {
        WalStats {
            records: self.records.saturating_sub(earlier.records),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            batches: self.batches.saturating_sub(earlier.batches),
            writer_batches: self.writer_batches.saturating_sub(earlier.writer_batches),
            max_ring_depth: self.max_ring_depth,
            checkpoints: self.checkpoints.saturating_sub(earlier.checkpoints),
            replayed: self.replayed.saturating_sub(earlier.replayed),
            move_intents: self.move_intents.saturating_sub(earlier.move_intents),
            moves_resolved: self.moves_resolved.saturating_sub(earlier.moves_resolved),
        }
    }
}

/// Snapshot the process-wide counters.
pub fn snapshot() -> WalStats {
    WalStats {
        records: RECORDS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
        batches: BATCHES.load(Ordering::Relaxed),
        writer_batches: WRITER_BATCHES.load(Ordering::Relaxed),
        max_ring_depth: MAX_RING_DEPTH.load(Ordering::Relaxed),
        checkpoints: CHECKPOINTS.load(Ordering::Relaxed),
        replayed: REPLAYED.load(Ordering::Relaxed),
        move_intents: MOVE_INTENTS.load(Ordering::Relaxed),
        moves_resolved: MOVES_RESOLVED.load(Ordering::Relaxed),
    }
}

/// Reset every counter to zero (between benchmark phases).
pub fn reset() {
    RECORDS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
    BATCHES.store(0, Ordering::Relaxed);
    WRITER_BATCHES.store(0, Ordering::Relaxed);
    MAX_RING_DEPTH.store(0, Ordering::Relaxed);
    CHECKPOINTS.store(0, Ordering::Relaxed);
    REPLAYED.store(0, Ordering::Relaxed);
    MOVE_INTENTS.store(0, Ordering::Relaxed);
    MOVES_RESOLVED.store(0, Ordering::Relaxed);
}

pub(crate) fn note_batch(records: u64, bytes: u64, by_writer_thread: bool) {
    RECORDS.fetch_add(records, Ordering::Relaxed);
    BYTES.fetch_add(bytes, Ordering::Relaxed);
    BATCHES.fetch_add(1, Ordering::Relaxed);
    if by_writer_thread {
        WRITER_BATCHES.fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) fn note_ring_depth(depth: u64) {
    MAX_RING_DEPTH.fetch_max(depth, Ordering::Relaxed);
}

pub(crate) fn note_checkpoint() {
    CHECKPOINTS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_replayed(records: u64) {
    REPLAYED.fetch_add(records, Ordering::Relaxed);
}

pub(crate) fn note_move_intent() {
    MOVE_INTENTS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_moves_resolved(moves: u64) {
    MOVES_RESOLVED.fetch_add(moves, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_saturating_and_counterwise() {
        let earlier = WalStats {
            records: 5,
            bytes: 100,
            batches: 2,
            writer_batches: 1,
            max_ring_depth: 8,
            checkpoints: 1,
            replayed: 7,
            move_intents: 1,
            moves_resolved: 0,
        };
        let later = WalStats {
            records: 9,
            bytes: 150,
            batches: 3,
            writer_batches: 2,
            max_ring_depth: 5,
            checkpoints: 1,
            replayed: 4, // e.g. a reset raced the later snapshot
            move_intents: 3,
            moves_resolved: 1,
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.records, 4);
        assert_eq!(delta.bytes, 50);
        assert_eq!(delta.batches, 1);
        assert_eq!(delta.writer_batches, 1);
        assert_eq!(delta.max_ring_depth, 5, "gauge keeps the later HWM");
        assert_eq!(delta.checkpoints, 0);
        assert_eq!(delta.replayed, 0, "saturates instead of underflowing");
        assert_eq!(delta.move_intents, 2);
        assert_eq!(delta.moves_resolved, 1);
    }
}
