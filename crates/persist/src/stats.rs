//! WAL counters: per-log instances aggregated into a process-wide view, in
//! the style of [`sf_stm::StatsSnapshot`].
//!
//! Every [`LogStats`] owner (one per durable map, one per shard of a durable
//! sharded map) double-books its counters: into its own instance — so
//! per-shard WAL telemetry is measurable and concurrently running logs (or
//! tests) cannot cross-talk — and into the process-wide aggregate behind
//! [`snapshot`]/[`reset`]/[`WalStats::delta_since`], which the bench
//! binaries snapshot around the measured phase and emit in their `SF_JSON=1`
//! line.
//!
//! Every field is declared once in the [`define_wal_stats!`] table with an
//! explicit **kind** — `counter` (subtracts under
//! [`WalStats::delta_since`]) or `gauge` (a high-water mark: the delta keeps
//! the later snapshot's value) — and the snapshot struct, atomics, delta,
//! and reset code are generated from that one list, so a new field cannot
//! silently get the wrong delta semantics.
//!
//! Each log also carries two latency [`Histogram`]s: the commit path's
//! enqueue-to-durable **sync wait** and the flush path's **fsync duration**
//! (both double-booked into process-wide histograms for the harness).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sf_obs::{Histogram, HistogramSnapshot};

/// Per-field delta: counters subtract (saturating), gauges keep the later
/// snapshot's value.
macro_rules! wal_delta_one {
    (counter, $later:ident, $earlier:ident, $field:ident) => {
        $later.$field.saturating_sub($earlier.$field)
    };
    (gauge, $later:ident, $earlier:ident, $field:ident) => {
        $later.$field
    };
}

/// Declare every WAL statistic once: `kind field: "doc"`. Generates the
/// atomic counter block, the [`WalStats`] snapshot struct, and the
/// delta/reset code with the kind applied consistently.
macro_rules! define_wal_stats {
    ($( $kind:ident $field:ident : $doc:expr, )*) => {
        /// The atomic counters of one log (or of the process-wide
        /// aggregate).
        #[derive(Debug, Default)]
        pub(crate) struct WalCounters {
            $( $field: AtomicU64, )*
        }

        impl WalCounters {
            const fn new() -> Self {
                WalCounters { $( $field: AtomicU64::new(0), )* }
            }

            fn snapshot(&self) -> WalStats {
                WalStats { $( $field: self.$field.load(Ordering::Relaxed), )* }
            }

            fn reset(&self) {
                $( self.$field.store(0, Ordering::Relaxed); )*
            }
        }

        /// Immutable view of a log's (or the process-wide) WAL counters.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct WalStats {
            $( #[doc = $doc] pub $field: u64, )*
        }

        impl WalStats {
            /// Counter-wise difference against an earlier snapshot
            /// (saturating, so a concurrent [`reset`] cannot underflow).
            /// Gauge fields keep the later snapshot's high-water mark.
            pub fn delta_since(&self, earlier: &WalStats) -> WalStats {
                WalStats {
                    $( $field: wal_delta_one!($kind, self, earlier, $field), )*
                }
            }
        }
    };
}

define_wal_stats! {
    counter records:
        "Redo records appended to the log.",
    counter bytes:
        "Bytes written to the log segment (frames, excluding checkpoints).",
    counter batches:
        "Group-commit flush batches (one write syscall + optional sync \
         each), regardless of who flushed them.",
    counter writer_batches:
        "The subset of `batches` flushed by a dedicated writer thread (the \
         `SF_WAL_WRITER=thread` path). Zero under the leader fallback and \
         in buffered mode.",
    gauge max_ring_depth:
        "High-water mark of the submission ring's depth (records queued \
         behind the writer at an enqueue). A gauge, not a counter: \
         `delta_since` keeps the later snapshot's value.",
    counter checkpoints:
        "Completed checkpoints.",
    counter replayed:
        "Records applied by recovery replays.",
    counter move_intents:
        "Cross-shard move intents durably logged (the two-phase protocol's \
         first fsync).",
    counter moves_resolved:
        "Orphaned move intents the cross-log recovery resolution completed \
         or rolled back.",
}

/// One log's statistics: the counter block plus the two latency histograms.
/// Owned by each `Wal`'s shared state; every `note_*` call double-books into
/// the process-wide aggregate.
#[derive(Debug)]
pub struct LogStats {
    counters: WalCounters,
    /// Commit-path enqueue-to-durable wait (nanoseconds, sampled).
    pub sync_wait: Histogram,
    /// Flush-path write+sync duration (nanoseconds, every batch).
    pub fsync: Histogram,
}

impl Default for LogStats {
    fn default() -> Self {
        LogStats::new()
    }
}

impl LogStats {
    /// A fresh, zeroed instance (const: usable in `static` position).
    pub const fn new() -> Self {
        LogStats {
            counters: WalCounters::new(),
            sync_wait: Histogram::new(),
            fsync: Histogram::new(),
        }
    }

    /// Immutable view of this log's counters.
    pub fn snapshot(&self) -> WalStats {
        self.counters.snapshot()
    }

    /// Reset this log's counters and histograms to zero.
    pub fn reset(&self) {
        self.counters.reset();
        self.sync_wait.reset();
        self.fsync.reset();
    }

    pub(crate) fn note_batch(&self, records: u64, bytes: u64, by_writer_thread: bool) {
        for stats in [self, global()] {
            stats.counters.records.fetch_add(records, Ordering::Relaxed);
            stats.counters.bytes.fetch_add(bytes, Ordering::Relaxed);
            stats.counters.batches.fetch_add(1, Ordering::Relaxed);
            if by_writer_thread {
                stats
                    .counters
                    .writer_batches
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn note_ring_depth(&self, depth: u64) {
        for stats in [self, global()] {
            stats
                .counters
                .max_ring_depth
                .fetch_max(depth, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_checkpoint(&self) {
        for stats in [self, global()] {
            stats.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_fsync(&self, elapsed: Duration) {
        for stats in [self, global()] {
            stats.fsync.record_duration(elapsed);
        }
    }

    pub(crate) fn note_sync_wait(&self, elapsed: Duration) {
        for stats in [self, global()] {
            stats.sync_wait.record_duration(elapsed);
        }
    }
}

static GLOBAL: LogStats = LogStats::new();

/// The process-wide aggregate every log double-books into. Recovery-time
/// work (replay, move resolution) books here directly because it runs
/// before any live log instance exists.
pub fn global() -> &'static LogStats {
    &GLOBAL
}

/// Snapshot the process-wide counters.
pub fn snapshot() -> WalStats {
    GLOBAL.snapshot()
}

/// Snapshot the process-wide sync-wait histogram.
pub fn sync_wait_histogram() -> HistogramSnapshot {
    GLOBAL.sync_wait.snapshot()
}

/// Snapshot the process-wide fsync-duration histogram.
pub fn fsync_histogram() -> HistogramSnapshot {
    GLOBAL.fsync.snapshot()
}

/// Reset the process-wide counters and histograms to zero (between
/// benchmark phases). Per-log instances are unaffected.
pub fn reset() {
    GLOBAL.reset()
}

pub(crate) fn note_replayed(records: u64) {
    GLOBAL
        .counters
        .replayed
        .fetch_add(records, Ordering::Relaxed);
}

pub(crate) fn note_move_intent() {
    GLOBAL.counters.move_intents.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_moves_resolved(moves: u64) {
    GLOBAL
        .counters
        .moves_resolved
        .fetch_add(moves, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_saturating_and_counterwise() {
        let earlier = WalStats {
            records: 5,
            bytes: 100,
            batches: 2,
            writer_batches: 1,
            max_ring_depth: 8,
            checkpoints: 1,
            replayed: 7,
            move_intents: 1,
            moves_resolved: 0,
        };
        let later = WalStats {
            records: 9,
            bytes: 150,
            batches: 3,
            writer_batches: 2,
            max_ring_depth: 5,
            checkpoints: 1,
            replayed: 4, // e.g. a reset raced the later snapshot
            move_intents: 3,
            moves_resolved: 1,
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.records, 4);
        assert_eq!(delta.bytes, 50);
        assert_eq!(delta.batches, 1);
        assert_eq!(delta.writer_batches, 1);
        assert_eq!(delta.max_ring_depth, 5, "gauge keeps the later HWM");
        assert_eq!(delta.checkpoints, 0);
        assert_eq!(delta.replayed, 0, "saturates instead of underflowing");
        assert_eq!(delta.move_intents, 2);
        assert_eq!(delta.moves_resolved, 1);
    }

    #[test]
    fn per_log_notes_double_book_into_the_global_aggregate() {
        let log = LogStats::new();
        let global_before = snapshot();
        log.note_batch(3, 64, true);
        log.note_ring_depth(11);
        log.note_checkpoint();
        log.note_fsync(Duration::from_micros(5));
        let local = log.snapshot();
        assert_eq!(local.records, 3);
        assert_eq!(local.bytes, 64);
        assert_eq!(local.batches, 1);
        assert_eq!(local.writer_batches, 1);
        assert_eq!(local.max_ring_depth, 11);
        assert_eq!(local.checkpoints, 1);
        assert_eq!(log.fsync.snapshot().count(), 1);
        let global_delta = snapshot().delta_since(&global_before);
        assert!(global_delta.records >= 3, "aggregate view saw the batch");
        assert!(global_delta.batches >= 1);
        // A second, concurrent log cannot pollute this log's local view.
        let other = LogStats::new();
        other.note_batch(100, 1000, false);
        assert_eq!(log.snapshot().records, 3, "no cross-talk between logs");
    }
}
