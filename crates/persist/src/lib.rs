//! # sf-persist — durability for the speculation-friendly tree service
//!
//! A map that evaporates on restart is not a service. This crate adds the
//! missing piece on top of the STM commit point the paper gives us for free:
//! every committed mutation already carries a **total-order stamp** (the
//! global-clock commit version), so logging `(version, logical op)` pairs
//! yields a redo log whose replay order is exactly the commit order — no
//! extra synchronization on the write path beyond a buffer push.
//!
//! * [`DurableMap`] — decorator over any [`sf_tree::TxMapVersioned`] backend
//!   (both speculation-friendly trees, the red-black/AVL/no-restructuring
//!   baselines): logs effective mutations through a **group-commit** writer
//!   and waits for durability before the operation returns.
//! * [`Wal`] — the segment log itself: checksummed frames, leader-based
//!   group commit, rotation, checkpoint install with atomic rename.
//! * [`recover`] / [`recover_sharded`] — rebuild `checkpoint + log` into an
//!   entry set (+ the version the STM clock must resume above).
//! * [`sharded_optimized`] / [`sharded_portable`] / [`checkpoint_sharded`] —
//!   the `ShardedMap<DurableMap<_>>` composition: one log per shard,
//!   checkpoints under `pause_maintenance`.
//! * [`stats`] — process-wide WAL counters (records, bytes, batches,
//!   checkpoints, replays) surfaced by the bench harnesses' `SF_JSON=1`
//!   lines.
//! * [`TempDir`] — std-only unique-per-test directory helper.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use sf_stm::{Stm, StmConfig};
//! use sf_tree::{OptSpecFriendlyTree, TxMap};
//! use sf_persist::{DurableMap, TempDir, WalOptions, recover};
//!
//! let dir = TempDir::new("doc-quickstart");
//! let stm = Stm::new(StmConfig::ctl());
//! let tree = Arc::new(OptSpecFriendlyTree::new());
//! let (map, _) = DurableMap::open(tree, &stm, dir.path(), WalOptions::default()).unwrap();
//! let mut handle = map.register(stm.register());
//! map.insert(&mut handle, 7, 70);   // durable when this returns
//! map.checkpoint(&mut handle).unwrap();
//! map.delete(&mut handle, 7);
//!
//! // ... crash here: the directory alone reconstructs the state.
//! let recovered = recover(dir.path()).unwrap();
//! assert!(recovered.entries.is_empty());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod chk;
pub mod log;
pub mod record;
pub mod recovery;
pub mod stats;
pub mod tempdir;

mod durable;

pub use durable::{
    checkpoint_sharded, sharded_optimized, sharded_portable, sharded_with, CheckpointReport,
    DurableHandle, DurableMap,
};
pub use log::{Wal, WalOptions, WalShared, WriterMode};
pub use record::{WalOp, WalRecord};
pub use recovery::{recover, recover_sharded, shard_dir, MoveIntentInfo, Recovery};
pub use stats::{LogStats, WalStats};
pub use tempdir::TempDir;
