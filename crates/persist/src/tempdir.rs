//! Std-only temporary-directory helper for tests and harnesses.
//!
//! The environment bakes in no `tempfile` crate, and WAL tests need unique
//! on-disk directories that never collide across concurrently running test
//! threads or leak into the working tree. [`TempDir`] creates
//! `<std::env::temp_dir()>/sf-<label>-<pid>-<n>-<nanos>` and removes the
//! whole tree on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A uniquely named directory under the system temp dir, deleted on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory. `label` names the test or harness (it ends
    /// up in the path, which helps when a failing run leaves state behind
    /// for inspection — the drop cleanup is skipped on panic-in-drop only).
    pub fn new(label: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        // sf-lint: allow(relaxed-atomic, process-local unique-suffix counter; only atomicity matters)
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let sanitized: String = label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '+' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path =
            std::env::temp_dir().join(format!("sf-{sanitized}-{}-{n}-{nanos}", std::process::id()));
        std::fs::create_dir_all(&path).expect("creating a temp dir must succeed");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path inside the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }

    /// Consume the guard *without* deleting the directory (used by crash
    /// tests that hand the path to a second process).
    pub fn keep(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirs_are_unique_and_cleaned_on_drop() {
        let a = TempDir::new("unique");
        let b = TempDir::new("unique");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir() && b.path().is_dir());
        let path = a.path().to_path_buf();
        std::fs::write(a.join("x"), b"x").unwrap();
        drop(a);
        assert!(!path.exists(), "drop removes the tree");
    }

    #[test]
    fn keep_disarms_the_cleanup() {
        let dir = TempDir::new("kept");
        let path = dir.keep();
        assert!(path.is_dir());
        std::fs::remove_dir_all(path).unwrap();
    }

    #[test]
    fn labels_are_sanitized_for_paths() {
        let dir = TempDir::new("weird/label: name");
        assert!(dir.path().is_dir());
        assert!(
            !dir.path().to_string_lossy().contains('/') || {
                // Only the temp-dir separators themselves.
                dir.path()
                    .file_name()
                    .unwrap()
                    .to_string_lossy()
                    .chars()
                    .all(|c| c != '/' && c != ':')
            }
        );
    }
}
