//! On-disk record format: length-prefixed, checksummed frames.
//!
//! Every piece of durable state — log records and checkpoint images — is
//! stored as a *frame*:
//!
//! ```text
//! +----------------+------------------+------------------+
//! | len: u32 (LE)  | checksum: u64 LE | payload (len B)  |
//! +----------------+------------------+------------------+
//! ```
//!
//! The checksum is a hand-rolled FNV-1a 64 over the payload (the environment
//! bakes in no checksum crates, and FNV is plenty for torn-tail detection:
//! the failure mode is a partially written or bit-flipped frame, not an
//! adversary). A reader that hits a frame whose header is truncated, whose
//! length is implausible, or whose checksum does not match treats everything
//! from that offset on as a **torn tail** and stops — exactly the recovery
//! contract of a write-ahead log whose final write was interrupted.

use sf_tree::{Key, Value};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Upper bound accepted for one frame's payload; anything larger is treated
/// as corruption. Log records are 17–49 bytes; checkpoint images hold the
/// whole map, so the bound is generous.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Hand-rolled FNV-1a 64 checksum of `bytes`.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One logical mutation of the map abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// `key` now maps to `value` (an effective insert, including revives of
    /// logically deleted keys). Replayed as an upsert.
    Insert {
        /// The inserted key.
        key: Key,
        /// The value the key maps to after the commit.
        value: Value,
    },
    /// `key` is no longer present (an effective delete, including the
    /// compare-and-delete).
    Delete {
        /// The removed key.
        key: Key,
    },
    /// `value` moved from `from` to `to` (§5.4's composed move) within one
    /// transactional domain. Encoded as **one** record so a torn tail can
    /// never separate the delete half from the insert half — recovery
    /// applies it atomically. A *cross-shard* move spans two logs and
    /// cannot be one record; it is covered by the two-phase
    /// [`MoveIntent`](WalOp::MoveIntent) protocol instead.
    Move {
        /// The vacated key.
        from: Key,
        /// The key now holding `value`.
        to: Key,
        /// The moved value.
        value: Value,
    },
    /// Declaration, fsynced to the **source** shard's log before either half
    /// of a cross-shard move commits: "move `move_id` will insert
    /// `(to, value)` into shard `peer_shard` and then delete `from` here".
    /// No map effect on replay — recovery joins it against both logs'
    /// move-stamped records and deterministically completes or rolls back
    /// an interrupted move (see `sf_persist::recovery`).
    MoveIntent {
        /// Process-unique id shared by every record of one cross-shard move.
        move_id: u64,
        /// Index of the destination shard (whose log holds the insert half).
        peer_shard: u64,
        /// The key being vacated on this (the source) shard.
        from: Key,
        /// The destination key on the peer shard.
        to: Key,
        /// The value in flight.
        value: Value,
    },
    /// Resolution marker on the source shard's log: move `move_id` finished
    /// (committed *or* rolled back) and the two logs are self-consistent —
    /// recovery skips the cross-log join for it. No map effect on replay.
    MoveCommit {
        /// The resolved move.
        move_id: u64,
    },
    /// The destination half of cross-shard move `move_id`: replayed exactly
    /// like [`Insert`](WalOp::Insert), but carrying the move id so recovery
    /// can tell whether the half became durable.
    MoveInsert {
        /// The move this insert belongs to.
        move_id: u64,
        /// The inserted key.
        key: Key,
        /// The moved value.
        value: Value,
    },
    /// The source half (or a rollback retraction) of cross-shard move
    /// `move_id`: replayed exactly like [`Delete`](WalOp::Delete), but
    /// carrying the move id so recovery can tell whether the half became
    /// durable.
    MoveDelete {
        /// The move this delete belongs to.
        move_id: u64,
        /// The removed key.
        key: Key,
    },
}

/// One redo record: a committed logical operation stamped with the STM
/// commit version of the transaction that performed it.
///
/// Records are *absolute* (they carry the post-state of the key, not a
/// delta), so replaying them in commit-version order is idempotent and the
/// final state of a key is decided by its highest-versioned record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// The commit version drawn from the STM clock.
    pub version: u64,
    /// The committed logical operation.
    pub op: WalOp,
}

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_MOVE: u8 = 3;
const TAG_MOVE_INTENT: u8 = 4;
const TAG_MOVE_COMMIT: u8 = 5;
const TAG_MOVE_INSERT: u8 = 6;
const TAG_MOVE_DELETE: u8 = 7;
/// version (8) + tag (1) + key (8) + value (8).
pub(crate) const RECORD_PAYLOAD_LEN: usize = 25;
/// version (8) + tag (1) + from (8) + to (8) + value (8).
pub(crate) const MOVE_PAYLOAD_LEN: usize = 33;
/// version (8) + tag (1) + move_id (8) + peer (8) + from (8) + to (8) + value (8).
pub(crate) const MOVE_INTENT_PAYLOAD_LEN: usize = 49;
/// version (8) + tag (1) + move_id (8).
pub(crate) const MOVE_COMMIT_PAYLOAD_LEN: usize = 17;
/// version (8) + tag (1) + move_id (8) + key (8) + value (8).
pub(crate) const MOVE_INSERT_PAYLOAD_LEN: usize = 41;
/// version (8) + tag (1) + move_id (8) + key (8).
pub(crate) const MOVE_DELETE_PAYLOAD_LEN: usize = 33;
/// len (4) + checksum (8).
pub(crate) const FRAME_HEADER_LEN: usize = 12;

impl WalRecord {
    /// Serialize this record's frame (header + payload) into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut payload = [0u8; MOVE_INTENT_PAYLOAD_LEN];
        payload[0..8].copy_from_slice(&self.version.to_le_bytes());
        let len = match self.op {
            WalOp::Insert { key, value } => {
                payload[8] = TAG_INSERT;
                payload[9..17].copy_from_slice(&key.to_le_bytes());
                payload[17..25].copy_from_slice(&value.to_le_bytes());
                RECORD_PAYLOAD_LEN
            }
            WalOp::Delete { key } => {
                payload[8] = TAG_DELETE;
                payload[9..17].copy_from_slice(&key.to_le_bytes());
                RECORD_PAYLOAD_LEN
            }
            WalOp::Move { from, to, value } => {
                payload[8] = TAG_MOVE;
                payload[9..17].copy_from_slice(&from.to_le_bytes());
                payload[17..25].copy_from_slice(&to.to_le_bytes());
                payload[25..33].copy_from_slice(&value.to_le_bytes());
                MOVE_PAYLOAD_LEN
            }
            WalOp::MoveIntent {
                move_id,
                peer_shard,
                from,
                to,
                value,
            } => {
                payload[8] = TAG_MOVE_INTENT;
                payload[9..17].copy_from_slice(&move_id.to_le_bytes());
                payload[17..25].copy_from_slice(&peer_shard.to_le_bytes());
                payload[25..33].copy_from_slice(&from.to_le_bytes());
                payload[33..41].copy_from_slice(&to.to_le_bytes());
                payload[41..49].copy_from_slice(&value.to_le_bytes());
                MOVE_INTENT_PAYLOAD_LEN
            }
            WalOp::MoveCommit { move_id } => {
                payload[8] = TAG_MOVE_COMMIT;
                payload[9..17].copy_from_slice(&move_id.to_le_bytes());
                MOVE_COMMIT_PAYLOAD_LEN
            }
            WalOp::MoveInsert {
                move_id,
                key,
                value,
            } => {
                payload[8] = TAG_MOVE_INSERT;
                payload[9..17].copy_from_slice(&move_id.to_le_bytes());
                payload[17..25].copy_from_slice(&key.to_le_bytes());
                payload[25..33].copy_from_slice(&value.to_le_bytes());
                MOVE_INSERT_PAYLOAD_LEN
            }
            WalOp::MoveDelete { move_id, key } => {
                payload[8] = TAG_MOVE_DELETE;
                payload[9..17].copy_from_slice(&move_id.to_le_bytes());
                payload[17..25].copy_from_slice(&key.to_le_bytes());
                MOVE_DELETE_PAYLOAD_LEN
            }
        };
        write_frame(out, &payload[..len]);
    }

    /// Decode one record from a frame payload.
    fn decode(payload: &[u8]) -> Option<WalRecord> {
        if payload.len() < MOVE_COMMIT_PAYLOAD_LEN {
            return None;
        }
        // sf-lint: allow(recovery-panic, in-bounds: length-guarded against MOVE_COMMIT_PAYLOAD_LEN above)
        let version = u64::from_le_bytes(payload[0..8].try_into().ok()?);
        let word = |at: usize| -> Option<u64> {
            Some(u64::from_le_bytes(
                payload.get(at..at + 8)?.try_into().ok()?,
            ))
        };
        // sf-lint: allow(recovery-panic, in-bounds: length-guarded against MOVE_COMMIT_PAYLOAD_LEN above)
        let op = match (payload[8], payload.len()) {
            (TAG_INSERT, RECORD_PAYLOAD_LEN) => WalOp::Insert {
                key: word(9)?,
                value: word(17)?,
            },
            (TAG_DELETE, RECORD_PAYLOAD_LEN) => WalOp::Delete { key: word(9)? },
            (TAG_MOVE, MOVE_PAYLOAD_LEN) => WalOp::Move {
                from: word(9)?,
                to: word(17)?,
                value: word(25)?,
            },
            (TAG_MOVE_INTENT, MOVE_INTENT_PAYLOAD_LEN) => WalOp::MoveIntent {
                move_id: word(9)?,
                peer_shard: word(17)?,
                from: word(25)?,
                to: word(33)?,
                value: word(41)?,
            },
            (TAG_MOVE_COMMIT, MOVE_COMMIT_PAYLOAD_LEN) => WalOp::MoveCommit { move_id: word(9)? },
            (TAG_MOVE_INSERT, MOVE_INSERT_PAYLOAD_LEN) => WalOp::MoveInsert {
                move_id: word(9)?,
                key: word(17)?,
                value: word(25)?,
            },
            (TAG_MOVE_DELETE, MOVE_DELETE_PAYLOAD_LEN) => WalOp::MoveDelete {
                move_id: word(9)?,
                key: word(17)?,
            },
            _ => return None,
        };
        Some(WalRecord { version, op })
    }
}

/// Append a `len | checksum | payload` frame to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Read the frame starting at `bytes[offset..]`. Returns the payload slice
/// and the offset of the next frame, or `None` when the bytes from `offset`
/// on do not form a valid frame (truncated header, implausible length, short
/// payload, or checksum mismatch) — the torn-tail condition.
pub fn read_frame(bytes: &[u8], offset: usize) -> Option<(&[u8], usize)> {
    let header = bytes.get(offset..offset + FRAME_HEADER_LEN)?;
    // sf-lint: allow(recovery-panic, in-bounds: header is exactly FRAME_HEADER_LEN bytes by the get above)
    let len = u32::from_le_bytes(header[0..4].try_into().ok()?) as usize;
    if len > MAX_FRAME_LEN {
        return None;
    }
    // sf-lint: allow(recovery-panic, in-bounds: header is exactly FRAME_HEADER_LEN bytes by the get above)
    let expected = u64::from_le_bytes(header[4..12].try_into().ok()?);
    let start = offset + FRAME_HEADER_LEN;
    let payload = bytes.get(start..start + len)?;
    if checksum(payload) != expected {
        return None;
    }
    Some((payload, start + len))
}

/// Outcome of scanning a segment's bytes for records.
#[derive(Debug, Clone, Default)]
pub struct SegmentScan {
    /// The records of every valid frame, in file order.
    pub records: Vec<WalRecord>,
    /// Bytes of the torn (invalid) tail, `0` when the whole segment parsed.
    pub torn_bytes: u64,
}

/// Parse a segment file's bytes into records, stopping cleanly at the first
/// invalid frame (torn tail). A frame that parses but does not decode as a
/// record (unknown tag, wrong payload size) also ends the scan: its bytes
/// cannot be trusted as a prefix of anything.
pub fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut scan = SegmentScan::default();
    let mut offset = 0usize;
    while offset < bytes.len() {
        match read_frame(bytes, offset) {
            Some((payload, next)) => match WalRecord::decode(payload) {
                Some(record) => {
                    scan.records.push(record);
                    offset = next;
                }
                None => break,
            },
            None => break,
        }
    }
    scan.torn_bytes = (bytes.len() - offset) as u64;
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                version: 1,
                op: WalOp::Insert { key: 7, value: 70 },
            },
            WalRecord {
                version: 2,
                op: WalOp::Delete { key: 7 },
            },
            WalRecord {
                version: 5,
                op: WalOp::Insert {
                    key: u64::MAX,
                    value: 0,
                },
            },
        ]
    }

    #[test]
    fn move_records_roundtrip_as_one_frame() {
        let record = WalRecord {
            version: 9,
            op: WalOp::Move {
                from: 3,
                to: 4,
                value: 77,
            },
        };
        let mut bytes = Vec::new();
        record.encode_into(&mut bytes);
        assert_eq!(bytes.len(), FRAME_HEADER_LEN + MOVE_PAYLOAD_LEN);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records, vec![record]);
        // Any truncation of the single frame drops the whole move: the two
        // halves of a move can never be separated by a torn tail.
        for cut in 1..bytes.len() {
            let scan = scan_segment(&bytes[..cut]);
            assert!(scan.records.is_empty(), "cut={cut}");
        }
    }

    #[test]
    fn move_protocol_records_roundtrip_and_tear_whole() {
        let records = vec![
            WalRecord {
                version: 0,
                op: WalOp::MoveIntent {
                    move_id: 0xdead_beef,
                    peer_shard: 1,
                    from: 3,
                    to: 4,
                    value: 77,
                },
            },
            WalRecord {
                version: 11,
                op: WalOp::MoveInsert {
                    move_id: 0xdead_beef,
                    key: 4,
                    value: 77,
                },
            },
            WalRecord {
                version: 12,
                op: WalOp::MoveDelete {
                    move_id: 0xdead_beef,
                    key: 3,
                },
            },
            WalRecord {
                version: 0,
                op: WalOp::MoveCommit {
                    move_id: 0xdead_beef,
                },
            },
        ];
        let mut bytes = Vec::new();
        for r in &records {
            r.encode_into(&mut bytes);
        }
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records, records);
        assert_eq!(scan.torn_bytes, 0);
        // Any truncation recovers a whole-record prefix: a frame is never
        // split into a partial protocol record.
        let mut boundaries = vec![0usize];
        let mut offset = 0;
        while let Some((_, next)) = read_frame(&bytes, offset) {
            boundaries.push(next);
            offset = next;
        }
        for cut in 0..bytes.len() {
            let scan = scan_segment(&bytes[..cut]);
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(scan.records, records[..whole], "cut={cut}");
        }
    }

    #[test]
    fn records_roundtrip_through_frames() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            r.encode_into(&mut bytes);
        }
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records, records);
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn short_write_is_detected_as_torn_tail() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            r.encode_into(&mut bytes);
        }
        // Chop bytes off the end: every truncation point must recover the
        // longest full prefix of records and report the rest as torn (a cut
        // of exactly one frame leaves a clean two-record log, nothing torn).
        let frame = FRAME_HEADER_LEN + RECORD_PAYLOAD_LEN;
        for cut in 1..=frame {
            let truncated = &bytes[..bytes.len() - cut];
            let scan = scan_segment(truncated);
            assert_eq!(scan.records, records[..2], "cut={cut}");
            assert_eq!(scan.torn_bytes > 0, cut < frame, "cut={cut}");
        }
    }

    #[test]
    fn bit_flip_stops_the_scan_at_the_corrupted_frame() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            r.encode_into(&mut bytes);
        }
        // Flip one bit inside the second record's payload.
        let second_frame = FRAME_HEADER_LEN + RECORD_PAYLOAD_LEN;
        let mut corrupted = bytes.clone();
        corrupted[second_frame + FRAME_HEADER_LEN + 3] ^= 0x40;
        let scan = scan_segment(&corrupted);
        assert_eq!(scan.records, records[..1]);
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn implausible_length_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let scan = scan_segment(&bytes);
        assert!(scan.records.is_empty());
        assert_eq!(scan.torn_bytes, bytes.len() as u64);
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = checksum(b"speculation");
        assert_eq!(a, checksum(b"speculation"));
        assert_ne!(a, checksum(b"speculatioN"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }
}
