//! On-disk record format: length-prefixed, checksummed frames.
//!
//! Every piece of durable state — log records and checkpoint images — is
//! stored as a *frame*:
//!
//! ```text
//! +----------------+------------------+------------------+
//! | len: u32 (LE)  | checksum: u64 LE | payload (len B)  |
//! +----------------+------------------+------------------+
//! ```
//!
//! The checksum is a hand-rolled FNV-1a 64 over the payload (the environment
//! bakes in no checksum crates, and FNV is plenty for torn-tail detection:
//! the failure mode is a partially written or bit-flipped frame, not an
//! adversary). A reader that hits a frame whose header is truncated, whose
//! length is implausible, or whose checksum does not match treats everything
//! from that offset on as a **torn tail** and stops — exactly the recovery
//! contract of a write-ahead log whose final write was interrupted.

use sf_tree::{Key, Value};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Upper bound accepted for one frame's payload; anything larger is treated
/// as corruption. Log records are 25 bytes; checkpoint images hold the whole
/// map, so the bound is generous.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Hand-rolled FNV-1a 64 checksum of `bytes`.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One logical mutation of the map abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// `key` now maps to `value` (an effective insert, including revives of
    /// logically deleted keys). Replayed as an upsert.
    Insert {
        /// The inserted key.
        key: Key,
        /// The value the key maps to after the commit.
        value: Value,
    },
    /// `key` is no longer present (an effective delete, including the
    /// compare-and-delete).
    Delete {
        /// The removed key.
        key: Key,
    },
    /// `value` moved from `from` to `to` (§5.4's composed move). Encoded as
    /// **one** record so a torn tail can never separate the delete half
    /// from the insert half — recovery applies it atomically. (A
    /// *cross-shard* move spans two logs and decomposes into
    /// `Insert` + `Delete`; it inherits the sharded map's documented
    /// transient-visibility relaxation.)
    Move {
        /// The vacated key.
        from: Key,
        /// The key now holding `value`.
        to: Key,
        /// The moved value.
        value: Value,
    },
}

/// One redo record: a committed logical operation stamped with the STM
/// commit version of the transaction that performed it.
///
/// Records are *absolute* (they carry the post-state of the key, not a
/// delta), so replaying them in commit-version order is idempotent and the
/// final state of a key is decided by its highest-versioned record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// The commit version drawn from the STM clock.
    pub version: u64,
    /// The committed logical operation.
    pub op: WalOp,
}

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_MOVE: u8 = 3;
/// version (8) + tag (1) + key (8) + value (8).
pub(crate) const RECORD_PAYLOAD_LEN: usize = 25;
/// version (8) + tag (1) + from (8) + to (8) + value (8).
pub(crate) const MOVE_PAYLOAD_LEN: usize = 33;
/// len (4) + checksum (8).
pub(crate) const FRAME_HEADER_LEN: usize = 12;

impl WalRecord {
    /// Serialize this record's frame (header + payload) into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut payload = [0u8; MOVE_PAYLOAD_LEN];
        payload[0..8].copy_from_slice(&self.version.to_le_bytes());
        let len = match self.op {
            WalOp::Insert { key, value } => {
                payload[8] = TAG_INSERT;
                payload[9..17].copy_from_slice(&key.to_le_bytes());
                payload[17..25].copy_from_slice(&value.to_le_bytes());
                RECORD_PAYLOAD_LEN
            }
            WalOp::Delete { key } => {
                payload[8] = TAG_DELETE;
                payload[9..17].copy_from_slice(&key.to_le_bytes());
                RECORD_PAYLOAD_LEN
            }
            WalOp::Move { from, to, value } => {
                payload[8] = TAG_MOVE;
                payload[9..17].copy_from_slice(&from.to_le_bytes());
                payload[17..25].copy_from_slice(&to.to_le_bytes());
                payload[25..33].copy_from_slice(&value.to_le_bytes());
                MOVE_PAYLOAD_LEN
            }
        };
        write_frame(out, &payload[..len]);
    }

    /// Decode one record from a frame payload.
    fn decode(payload: &[u8]) -> Option<WalRecord> {
        if payload.len() < RECORD_PAYLOAD_LEN {
            return None;
        }
        let version = u64::from_le_bytes(payload[0..8].try_into().ok()?);
        let key = u64::from_le_bytes(payload[9..17].try_into().ok()?);
        let value = u64::from_le_bytes(payload[17..25].try_into().ok()?);
        let op = match (payload[8], payload.len()) {
            (TAG_INSERT, RECORD_PAYLOAD_LEN) => WalOp::Insert { key, value },
            (TAG_DELETE, RECORD_PAYLOAD_LEN) => WalOp::Delete { key },
            (TAG_MOVE, MOVE_PAYLOAD_LEN) => WalOp::Move {
                from: key,
                to: value,
                value: u64::from_le_bytes(payload[25..33].try_into().ok()?),
            },
            _ => return None,
        };
        Some(WalRecord { version, op })
    }
}

/// Append a `len | checksum | payload` frame to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Read the frame starting at `bytes[offset..]`. Returns the payload slice
/// and the offset of the next frame, or `None` when the bytes from `offset`
/// on do not form a valid frame (truncated header, implausible length, short
/// payload, or checksum mismatch) — the torn-tail condition.
pub fn read_frame(bytes: &[u8], offset: usize) -> Option<(&[u8], usize)> {
    let header = bytes.get(offset..offset + FRAME_HEADER_LEN)?;
    let len = u32::from_le_bytes(header[0..4].try_into().ok()?) as usize;
    if len > MAX_FRAME_LEN {
        return None;
    }
    let expected = u64::from_le_bytes(header[4..12].try_into().ok()?);
    let start = offset + FRAME_HEADER_LEN;
    let payload = bytes.get(start..start + len)?;
    if checksum(payload) != expected {
        return None;
    }
    Some((payload, start + len))
}

/// Outcome of scanning a segment's bytes for records.
#[derive(Debug, Clone, Default)]
pub struct SegmentScan {
    /// The records of every valid frame, in file order.
    pub records: Vec<WalRecord>,
    /// Bytes of the torn (invalid) tail, `0` when the whole segment parsed.
    pub torn_bytes: u64,
}

/// Parse a segment file's bytes into records, stopping cleanly at the first
/// invalid frame (torn tail). A frame that parses but does not decode as a
/// record (unknown tag, wrong payload size) also ends the scan: its bytes
/// cannot be trusted as a prefix of anything.
pub fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut scan = SegmentScan::default();
    let mut offset = 0usize;
    while offset < bytes.len() {
        match read_frame(bytes, offset) {
            Some((payload, next)) => match WalRecord::decode(payload) {
                Some(record) => {
                    scan.records.push(record);
                    offset = next;
                }
                None => break,
            },
            None => break,
        }
    }
    scan.torn_bytes = (bytes.len() - offset) as u64;
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                version: 1,
                op: WalOp::Insert { key: 7, value: 70 },
            },
            WalRecord {
                version: 2,
                op: WalOp::Delete { key: 7 },
            },
            WalRecord {
                version: 5,
                op: WalOp::Insert {
                    key: u64::MAX,
                    value: 0,
                },
            },
        ]
    }

    #[test]
    fn move_records_roundtrip_as_one_frame() {
        let record = WalRecord {
            version: 9,
            op: WalOp::Move {
                from: 3,
                to: 4,
                value: 77,
            },
        };
        let mut bytes = Vec::new();
        record.encode_into(&mut bytes);
        assert_eq!(bytes.len(), FRAME_HEADER_LEN + MOVE_PAYLOAD_LEN);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records, vec![record]);
        // Any truncation of the single frame drops the whole move: the two
        // halves of a move can never be separated by a torn tail.
        for cut in 1..bytes.len() {
            let scan = scan_segment(&bytes[..cut]);
            assert!(scan.records.is_empty(), "cut={cut}");
        }
    }

    #[test]
    fn records_roundtrip_through_frames() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            r.encode_into(&mut bytes);
        }
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records, records);
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn short_write_is_detected_as_torn_tail() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            r.encode_into(&mut bytes);
        }
        // Chop bytes off the end: every truncation point must recover the
        // longest full prefix of records and report the rest as torn (a cut
        // of exactly one frame leaves a clean two-record log, nothing torn).
        let frame = FRAME_HEADER_LEN + RECORD_PAYLOAD_LEN;
        for cut in 1..=frame {
            let truncated = &bytes[..bytes.len() - cut];
            let scan = scan_segment(truncated);
            assert_eq!(scan.records, records[..2], "cut={cut}");
            assert_eq!(scan.torn_bytes > 0, cut < frame, "cut={cut}");
        }
    }

    #[test]
    fn bit_flip_stops_the_scan_at_the_corrupted_frame() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            r.encode_into(&mut bytes);
        }
        // Flip one bit inside the second record's payload.
        let second_frame = FRAME_HEADER_LEN + RECORD_PAYLOAD_LEN;
        let mut corrupted = bytes.clone();
        corrupted[second_frame + FRAME_HEADER_LEN + 3] ^= 0x40;
        let scan = scan_segment(&corrupted);
        assert_eq!(scan.records, records[..1]);
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn implausible_length_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let scan = scan_segment(&bytes);
        assert!(scan.records.is_empty());
        assert_eq!(scan.torn_bytes, bytes.len() as u64);
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = checksum(b"speculation");
        assert_eq!(a, checksum(b"speculation"));
        assert_ne!(a, checksum(b"speculatioN"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }
}
