//! Internal indirection over the `sf-check` instrumentation hooks.
//!
//! With the `check` feature the functions forward to `sf_check`; without it
//! they are empty `#[inline(always)]` bodies, so the checkpoint and
//! cross-shard-move boundaries carry their schedule-fuzzer yield points
//! unconditionally at zero default-build cost.

#[cfg(feature = "check")]
pub(crate) use sf_check::{sched_point, SchedEvent};

#[cfg(not(feature = "check"))]
mod noop {
    /// Mirror of `sf_check::SchedEvent` restricted to the variants
    /// sf-persist emits, so call sites compile identically in both
    /// configurations.
    #[derive(Debug, Clone, Copy)]
    pub(crate) enum SchedEvent {
        Move,
        Checkpoint,
    }

    #[inline(always)]
    pub(crate) fn sched_point(_ev: SchedEvent) {}
}

#[cfg(not(feature = "check"))]
pub(crate) use noop::*;
