//! Crash recovery: rebuild a map's contents from `checkpoint + log`.
//!
//! Recovery is a pure function of the directory's bytes:
//!
//! 1. Load `checkpoint.ck` (if present) into a `BTreeMap`, remembering its
//!    snapshot version `vs`.
//! 2. Scan every `segment-*.wal` in index order, collecting records until
//!    the first invalid frame (the **torn tail**) — everything from that
//!    point on, including later segments, is discarded, exactly like a WAL
//!    whose final write was cut short.
//! 3. Sort the surviving records by commit version (file order within one
//!    group-commit batch already matches, but a preempted committer may
//!    have appended late — the version stamps are the ground truth) and
//!    replay the ones with `version > vs` as upserts/removes.
//!
//! The result equals the committed state of the map at the crash point,
//! minus at most the operations whose `TxMap` call had not yet returned
//! (their records never became durable). See `EXPERIMENTS.md` for the full
//! durability contract.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use sf_tree::{Key, Value};

use crate::log::{parse_segment_name, CHECKPOINT_FILE};
use crate::record::{read_frame, scan_segment, WalOp, WalRecord};
use crate::stats;

/// The outcome of recovering one log directory.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// The recovered live entries, ascending by key.
    pub entries: Vec<(Key, Value)>,
    /// The highest version recovered (checkpoint or record); a fresh STM
    /// clock must be advanced past it before new mutations are logged.
    pub last_version: u64,
    /// Version of the checkpoint image (`0` when none was found).
    pub checkpoint_version: u64,
    /// Entries loaded from the checkpoint image.
    pub checkpoint_entries: u64,
    /// Segment files scanned.
    pub segments: u64,
    /// Highest segment index found (`0` when the directory held none); a
    /// re-opened log continues at `last_segment + 1`.
    pub last_segment: u64,
    /// Valid records found in the log.
    pub records_scanned: u64,
    /// Records actually replayed (version above the checkpoint's).
    pub records_replayed: u64,
    /// Bytes discarded as the torn tail (invalid trailing frames plus every
    /// byte of the segments after the corrupted one).
    pub torn_bytes: u64,
    /// Where the torn tail starts, when one was found: the segment index and
    /// the byte offset of its last valid frame boundary. [`repair_torn_tail`]
    /// uses this to make the discard durable before appending resumes.
    pub torn_at: Option<(u64, u64)>,
}

impl Recovery {
    /// Fold another directory's recovery into this one: entries concatenate
    /// (callers re-sort once — shard key spaces are disjoint), versions and
    /// segment indices take the maximum, counters add up.
    pub fn absorb(&mut self, other: Recovery) {
        self.entries.extend(other.entries);
        self.last_version = self.last_version.max(other.last_version);
        self.checkpoint_version = self.checkpoint_version.max(other.checkpoint_version);
        self.checkpoint_entries += other.checkpoint_entries;
        self.segments += other.segments;
        self.last_segment = self.last_segment.max(other.last_segment);
        self.records_scanned += other.records_scanned;
        self.records_replayed += other.records_replayed;
        self.torn_bytes += other.torn_bytes;
        self.torn_at = self.torn_at.or(other.torn_at);
    }
}

/// Parse a checkpoint image's frame into `(version, entries)`.
fn parse_checkpoint(bytes: &[u8]) -> io::Result<(u64, BTreeMap<Key, Value>)> {
    let corrupt = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let (payload, next) = read_frame(bytes, 0).ok_or_else(|| corrupt("checkpoint frame"))?;
    if next != bytes.len() {
        return Err(corrupt("trailing bytes after the checkpoint frame"));
    }
    if payload.len() < 16 {
        return Err(corrupt("checkpoint header"));
    }
    let version = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let count = u64::from_le_bytes(payload[8..16].try_into().unwrap()) as usize;
    if payload.len() != 16 + count * 16 {
        return Err(corrupt("checkpoint entry count"));
    }
    let mut entries = BTreeMap::new();
    for i in 0..count {
        let at = 16 + i * 16;
        let key = u64::from_le_bytes(payload[at..at + 8].try_into().unwrap());
        let value = u64::from_le_bytes(payload[at + 8..at + 16].try_into().unwrap());
        entries.insert(key, value);
    }
    Ok((version, entries))
}

/// Recover the contents of one log directory. A missing or empty directory
/// recovers to the empty map; a corrupt *checkpoint* is an error (unlike a
/// torn log tail, it cannot be attributed to an interrupted append — the
/// atomic tmp-and-rename install protocol never exposes a partial image).
pub fn recover(dir: impl AsRef<Path>) -> io::Result<Recovery> {
    let dir = dir.as_ref();
    let mut recovery = Recovery::default();
    if !dir.exists() {
        return Ok(recovery);
    }

    let mut map = BTreeMap::new();
    let checkpoint_path = dir.join(CHECKPOINT_FILE);
    if checkpoint_path.exists() {
        let (version, entries) = parse_checkpoint(&fs::read(&checkpoint_path)?)?;
        recovery.checkpoint_version = version;
        recovery.checkpoint_entries = entries.len() as u64;
        recovery.last_version = version;
        map = entries;
    }

    // Segments in index order.
    let mut segments: Vec<(u64, std::path::PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(index) = entry.file_name().to_str().and_then(parse_segment_name) {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|&(index, _)| index);

    let mut records: Vec<WalRecord> = Vec::new();
    for &(index, ref path) in &segments {
        recovery.last_segment = index;
        if recovery.torn_at.is_some() {
            // Everything after the corruption point is untrusted.
            recovery.torn_bytes += fs::metadata(path)?.len();
            continue;
        }
        recovery.segments += 1;
        let bytes = fs::read(path)?;
        let scan = scan_segment(&bytes);
        records.extend(scan.records);
        if scan.torn_bytes > 0 {
            recovery.torn_bytes += scan.torn_bytes;
            recovery.torn_at = Some((index, bytes.len() as u64 - scan.torn_bytes));
        }
    }
    recovery.records_scanned = records.len() as u64;

    // Version stamps are the ground truth for replay order.
    records.sort_by_key(|r| r.version);
    for record in &records {
        recovery.last_version = recovery.last_version.max(record.version);
        if record.version <= recovery.checkpoint_version {
            // Already reflected in the checkpoint image.
            continue;
        }
        recovery.records_replayed += 1;
        match record.op {
            WalOp::Insert { key, value } => {
                map.insert(key, value);
            }
            WalOp::Delete { key } => {
                map.remove(&key);
            }
            WalOp::Move { from, to, value } => {
                map.remove(&from);
                map.insert(to, value);
            }
        }
    }
    stats::note_replayed(recovery.records_replayed);

    recovery.entries = map.into_iter().collect();
    Ok(recovery)
}

/// Make a torn tail's discard durable so appending can safely resume in the
/// directory: truncate the torn segment to its last valid frame boundary
/// and delete every later segment. Without this, a crash–restart–crash
/// sequence would leave the old torn frame in place, and the *second*
/// recovery would discard every segment written (and acknowledged!) after
/// the restart. No-op when the recovery saw no tear.
pub fn repair_torn_tail(dir: impl AsRef<Path>, recovery: &Recovery) -> io::Result<()> {
    let Some((torn_segment, valid_bytes)) = recovery.torn_at else {
        return Ok(());
    };
    let dir = dir.as_ref();
    let file = fs::OpenOptions::new()
        .write(true)
        .open(crate::log::segment_path(dir, torn_segment))?;
    file.set_len(valid_bytes)?;
    file.sync_all()?;
    for index in (torn_segment + 1)..=recovery.last_segment {
        let path = crate::log::segment_path(dir, index);
        if path.exists() {
            fs::remove_file(path)?;
        }
    }
    if let Ok(handle) = fs::File::open(dir) {
        let _ = handle.sync_all();
    }
    Ok(())
}

/// Recover a sharded durable map's base directory: the union of the
/// `shard-<i>` subdirectory recoveries (keys are hash-partitioned, so the
/// shards are disjoint). `last_version` is the maximum over the shards.
pub fn recover_sharded(base: impl AsRef<Path>, shards: usize) -> io::Result<Recovery> {
    let base = base.as_ref();
    let mut merged = Recovery::default();
    for shard in 0..shards {
        merged.absorb(recover(shard_dir(base, shard))?);
    }
    merged.entries.sort_unstable();
    Ok(merged)
}

/// The per-shard log directory of a sharded durable map.
pub fn shard_dir(base: &Path, shard: usize) -> std::path::PathBuf {
    base.join(format!("shard-{shard}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{segment_path, Wal};
    use crate::tempdir::TempDir;

    fn insert(version: u64, key: Key, value: Value) -> WalRecord {
        WalRecord {
            version,
            op: WalOp::Insert { key, value },
        }
    }

    fn delete(version: u64, key: Key) -> WalRecord {
        WalRecord {
            version,
            op: WalOp::Delete { key },
        }
    }

    #[test]
    fn missing_directory_recovers_empty() {
        let dir = TempDir::new("rec-missing");
        let recovery = recover(dir.join("nope")).unwrap();
        assert!(recovery.entries.is_empty());
        assert_eq!(recovery.last_version, 0);
        assert_eq!(recovery.last_segment, 0);
    }

    #[test]
    fn log_only_recovery_replays_in_version_order() {
        let dir = TempDir::new("rec-log");
        let wal = Wal::open(dir.path(), 1, 8).unwrap();
        // Enqueue out of order: replay must still apply 1, 2, 3.
        wal.enqueue(insert(2, 7, 70));
        wal.enqueue(insert(1, 7, 7));
        wal.enqueue(delete(3, 9));
        wal.enqueue(insert(4, 9, 90));
        wal.flush().unwrap();
        let recovery = recover(dir.path()).unwrap();
        assert_eq!(recovery.entries, vec![(7, 70), (9, 90)]);
        assert_eq!(recovery.last_version, 4);
        assert_eq!(recovery.records_replayed, 4);
        assert_eq!(recovery.last_segment, 1);
    }

    #[test]
    fn checkpoint_filters_older_records() {
        let dir = TempDir::new("rec-ckpt");
        let wal = Wal::open(dir.path(), 1, 8).unwrap();
        wal.enqueue(insert(1, 1, 10));
        wal.enqueue(insert(2, 2, 20));
        wal.flush().unwrap();
        let sealed = wal.rotate().unwrap();
        // The image says: at version 5, the map was {1: 11}. A stale record
        // with version <= 5 lurking in the live segment must NOT regress it.
        wal.enqueue(insert(4, 2, 99));
        wal.enqueue(insert(6, 3, 30));
        wal.flush().unwrap();
        wal.install_checkpoint(5, &[(1, 11)], sealed).unwrap();
        let recovery = recover(dir.path()).unwrap();
        assert_eq!(recovery.entries, vec![(1, 11), (3, 30)]);
        assert_eq!(recovery.checkpoint_version, 5);
        assert_eq!(recovery.records_replayed, 1);
        assert_eq!(recovery.last_version, 6);
    }

    #[test]
    fn torn_tail_discards_later_segments_too() {
        let dir = TempDir::new("rec-torn");
        let wal = Wal::open(dir.path(), 1, 8).unwrap();
        wal.enqueue(insert(1, 1, 10));
        wal.enqueue(insert(2, 2, 20));
        wal.flush().unwrap();
        wal.rotate().unwrap();
        wal.enqueue(insert(3, 3, 30));
        wal.flush().unwrap();
        // Corrupt the FIRST segment: the second must be dropped entirely.
        let path = segment_path(dir.path(), 1);
        let mut bytes = fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 5] ^= 0x10;
        fs::write(&path, bytes).unwrap();
        let recovery = recover(dir.path()).unwrap();
        assert_eq!(recovery.entries, vec![(1, 10)]);
        assert!(recovery.torn_bytes > 0);
        assert_eq!(recovery.records_scanned, 1);
    }

    #[test]
    fn corrupt_checkpoint_is_a_hard_error() {
        let dir = TempDir::new("rec-badckpt");
        fs::write(dir.join(CHECKPOINT_FILE), b"garbage").unwrap();
        assert!(recover(dir.path()).is_err());
    }

    #[test]
    fn sharded_recovery_merges_disjoint_shards() {
        let dir = TempDir::new("rec-sharded");
        for shard in 0..2usize {
            let wal = Wal::open(shard_dir(dir.path(), shard), 1, 8).unwrap();
            wal.enqueue(insert(shard as u64 + 1, shard as u64 * 100, 1));
            wal.flush().unwrap();
        }
        let recovery = recover_sharded(dir.path(), 2).unwrap();
        assert_eq!(recovery.entries, vec![(0, 1), (100, 1)]);
        assert_eq!(recovery.last_version, 2);
    }
}
