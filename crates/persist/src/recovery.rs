//! Crash recovery: rebuild a map's contents from `checkpoint + log`.
//!
//! Recovery is a pure function of the directory's bytes:
//!
//! 1. Load `checkpoint.ck` (if present) into a `BTreeMap`, remembering its
//!    snapshot version `vs`.
//! 2. Scan every `segment-*.wal` in index order, collecting records until
//!    the first invalid frame (the **torn tail**) — everything from that
//!    point on, including later segments, is discarded, exactly like a WAL
//!    whose final write was cut short.
//! 3. Sort the surviving records by commit version (file order within one
//!    group-commit batch already matches, but a preempted committer may
//!    have appended late — the version stamps are the ground truth) and
//!    replay the ones with `version > vs` as upserts/removes.
//!
//! The result equals the committed state of the map at the crash point,
//! minus at most the operations whose `TxMap` call had not yet returned
//! (their records never became durable). See `EXPERIMENTS.md` for the full
//! durability contract.
//!
//! ## Cross-shard move resolution
//!
//! [`recover_sharded`] adds a **cross-log join** on top of the per-shard
//! recoveries. A cross-shard move spans two shard logs; its source shard
//! durably logs a [`WalOp::MoveIntent`] before either half commits, the
//! two halves are logged as [`WalOp::MoveInsert`] / [`WalOp::MoveDelete`]
//! stamped with the shared move id, and a [`WalOp::MoveCommit`] on the
//! source log marks the move resolved. For every intent *without* a commit
//! marker (the crash interrupted the move), resolution decides
//! deterministically, in the ARIES redo/undo tradition:
//!
//! * source delete durable → the move completed; nothing to fix (the
//!   fsync ordering guarantees the destination insert is durable too);
//! * destination insert durable but the source still holds the moved
//!   value → **roll forward**: complete the move by deleting the source
//!   entry;
//! * destination insert durable and the source was concurrently updated
//!   (the live move would have rolled back) → **roll back**: retract the
//!   in-flight destination copy if it is still the moved value;
//! * destination insert not durable → the move never happened; nothing to
//!   fix.
//!
//! A reopen ([`crate::sharded_with`]) makes every resolution durable by
//! appending the equivalent stamped records plus a `MoveCommit` to the
//! affected logs before accepting new mutations, so a later crash replays
//! to the same state instead of re-judging a stale intent against a log
//! that has moved on.

use std::collections::{BTreeMap, HashSet};
use std::fs;
use std::io;
use std::path::Path;

use sf_tree::{Key, Value};

use crate::log::{parse_segment_name, CHECKPOINT_FILE};
use crate::record::{read_frame, scan_segment, WalOp, WalRecord};
use crate::stats;

/// One [`WalOp::MoveIntent`] found while scanning a log, in file order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveIntentInfo {
    /// The move's process-unique id.
    pub move_id: u64,
    /// The destination shard index recorded in the intent.
    pub peer_shard: u64,
    /// The source key.
    pub from: Key,
    /// The destination key.
    pub to: Key,
    /// The value in flight.
    pub value: Value,
}

/// The outcome of recovering one log directory.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// The recovered live entries, ascending by key.
    pub entries: Vec<(Key, Value)>,
    /// The highest version recovered (checkpoint or record); a fresh STM
    /// clock must be advanced past it before new mutations are logged.
    pub last_version: u64,
    /// Version of the checkpoint image (`0` when none was found).
    pub checkpoint_version: u64,
    /// Entries loaded from the checkpoint image.
    pub checkpoint_entries: u64,
    /// Segment files scanned.
    pub segments: u64,
    /// Highest segment index found (`0` when the directory held none); a
    /// re-opened log continues at `last_segment + 1`.
    pub last_segment: u64,
    /// Valid records found in the log.
    pub records_scanned: u64,
    /// Records actually replayed (version above the checkpoint's).
    pub records_replayed: u64,
    /// Bytes discarded as the torn tail (invalid trailing frames plus every
    /// byte of the segments after the corrupted one).
    pub torn_bytes: u64,
    /// Where the torn tail starts, when one was found: the segment index and
    /// the byte offset of its last valid frame boundary. [`repair_torn_tail`]
    /// uses this to make the discard durable before appending resumes.
    pub torn_at: Option<(u64, u64)>,
    /// Every [`WalOp::MoveIntent`] scanned in this directory's log, in file
    /// order (the cross-log join's left-hand side).
    pub intents: Vec<MoveIntentInfo>,
    /// Move ids with a [`WalOp::MoveCommit`] marker in this log: their
    /// intents are resolved and skip the join.
    pub move_commits: Vec<u64>,
    /// Move ids whose destination-half [`WalOp::MoveInsert`] survived in
    /// this log.
    pub move_inserts: Vec<u64>,
    /// Move ids whose source-half (or retraction) [`WalOp::MoveDelete`]
    /// survived in this log.
    pub move_deletes: Vec<u64>,
    /// Orphaned intents the cross-log resolution pass completed or rolled
    /// back (only [`recover_sharded`] sets this).
    pub moves_resolved: u64,
    /// The highest move id stamped on any scanned protocol record (`0`
    /// when none): a reopen advances the process-wide move-id allocator
    /// past it so a fresh incarnation can never reissue an id a stale log
    /// record still carries.
    pub max_move_id: u64,
}

impl Recovery {
    /// Fold another directory's recovery into this one: entries concatenate
    /// (callers re-sort once — shard key spaces are disjoint), versions and
    /// segment indices take the maximum, counters add up.
    pub fn absorb(&mut self, other: Recovery) {
        self.entries.extend(other.entries);
        self.last_version = self.last_version.max(other.last_version);
        self.checkpoint_version = self.checkpoint_version.max(other.checkpoint_version);
        self.checkpoint_entries += other.checkpoint_entries;
        self.segments += other.segments;
        self.last_segment = self.last_segment.max(other.last_segment);
        self.records_scanned += other.records_scanned;
        self.records_replayed += other.records_replayed;
        self.torn_bytes += other.torn_bytes;
        self.torn_at = self.torn_at.or(other.torn_at);
        self.intents.extend(other.intents);
        self.move_commits.extend(other.move_commits);
        self.move_inserts.extend(other.move_inserts);
        self.move_deletes.extend(other.move_deletes);
        self.moves_resolved += other.moves_resolved;
        self.max_move_id = self.max_move_id.max(other.max_move_id);
    }

    /// The recovered value at `key`, if any (entries are sorted by key).
    fn entry(&self, key: Key) -> Option<Value> {
        self.entries
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Remove `key` from the recovered entries, if present.
    fn remove_entry(&mut self, key: Key) {
        if let Ok(i) = self.entries.binary_search_by_key(&key, |&(k, _)| k) {
            self.entries.remove(i);
        }
    }
}

/// Parse a checkpoint image's frame into `(version, entries)`.
fn parse_checkpoint(bytes: &[u8]) -> io::Result<(u64, BTreeMap<Key, Value>)> {
    let corrupt = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let (payload, next) = read_frame(bytes, 0).ok_or_else(|| corrupt("checkpoint frame"))?;
    if next != bytes.len() {
        return Err(corrupt("trailing bytes after the checkpoint frame"));
    }
    let word = |at: usize| -> io::Result<u64> {
        payload
            .get(at..at + 8)
            .and_then(|bytes| bytes.try_into().ok())
            .map(u64::from_le_bytes)
            .ok_or_else(|| corrupt("checkpoint truncated"))
    };
    let version = word(0)?;
    let count = word(8)? as usize;
    // Checked arithmetic: a corrupt count near usize::MAX must not overflow
    // the expected-length computation.
    let expected_len = count
        .checked_mul(16)
        .and_then(|n| n.checked_add(16))
        .ok_or_else(|| corrupt("checkpoint entry count"))?;
    if payload.len() != expected_len {
        return Err(corrupt("checkpoint entry count"));
    }
    let mut entries = BTreeMap::new();
    for i in 0..count {
        let at = 16 + i * 16;
        entries.insert(word(at)?, word(at + 8)?);
    }
    Ok((version, entries))
}

/// Recover the contents of one log directory. A missing or empty directory
/// recovers to the empty map; a corrupt *checkpoint* is an error (unlike a
/// torn log tail, it cannot be attributed to an interrupted append — the
/// atomic tmp-and-rename install protocol never exposes a partial image).
pub fn recover(dir: impl AsRef<Path>) -> io::Result<Recovery> {
    let dir = dir.as_ref();
    let mut recovery = Recovery::default();
    if !dir.exists() {
        return Ok(recovery);
    }

    let mut map = BTreeMap::new();
    let checkpoint_path = dir.join(CHECKPOINT_FILE);
    if checkpoint_path.exists() {
        let (version, entries) = parse_checkpoint(&fs::read(&checkpoint_path)?)?;
        recovery.checkpoint_version = version;
        recovery.checkpoint_entries = entries.len() as u64;
        recovery.last_version = version;
        map = entries;
    }

    // Segments in index order.
    let mut segments: Vec<(u64, std::path::PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(index) = entry.file_name().to_str().and_then(parse_segment_name) {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|&(index, _)| index);

    let mut records: Vec<WalRecord> = Vec::new();
    for &(index, ref path) in &segments {
        recovery.last_segment = index;
        if recovery.torn_at.is_some() {
            // Everything after the corruption point is untrusted.
            recovery.torn_bytes += fs::metadata(path)?.len();
            continue;
        }
        recovery.segments += 1;
        let bytes = fs::read(path)?;
        let scan = scan_segment(&bytes);
        records.extend(scan.records);
        if scan.torn_bytes > 0 {
            recovery.torn_bytes += scan.torn_bytes;
            recovery.torn_at = Some((index, bytes.len() as u64 - scan.torn_bytes));
        }
    }
    recovery.records_scanned = records.len() as u64;

    // Version stamps are the ground truth for replay order. Move-protocol
    // bookkeeping (intents, commit markers, half ids) is collected from
    // every scanned record regardless of the checkpoint filter: a half may
    // be covered by a checkpoint image while its move is still unresolved.
    // Intent/marker versions are ordering pins (0 and `u64::MAX`), not STM
    // versions, so they are excluded from `last_version`.
    records.sort_by_key(|r| r.version);
    for record in &records {
        match record.op {
            WalOp::MoveIntent {
                move_id,
                peer_shard,
                from,
                to,
                value,
            } => {
                recovery.max_move_id = recovery.max_move_id.max(move_id);
                recovery.intents.push(MoveIntentInfo {
                    move_id,
                    peer_shard,
                    from,
                    to,
                    value,
                });
                continue;
            }
            WalOp::MoveCommit { move_id } => {
                recovery.max_move_id = recovery.max_move_id.max(move_id);
                recovery.move_commits.push(move_id);
                continue;
            }
            WalOp::MoveInsert { move_id, .. } => {
                recovery.max_move_id = recovery.max_move_id.max(move_id);
                recovery.move_inserts.push(move_id);
            }
            WalOp::MoveDelete { move_id, .. } => {
                recovery.max_move_id = recovery.max_move_id.max(move_id);
                recovery.move_deletes.push(move_id);
            }
            _ => {}
        }
        recovery.last_version = recovery.last_version.max(record.version);
        if record.version <= recovery.checkpoint_version {
            // Already reflected in the checkpoint image.
            continue;
        }
        recovery.records_replayed += 1;
        match record.op {
            WalOp::Insert { key, value } | WalOp::MoveInsert { key, value, .. } => {
                map.insert(key, value);
            }
            WalOp::Delete { key } | WalOp::MoveDelete { key, .. } => {
                map.remove(&key);
            }
            WalOp::Move { from, to, value } => {
                map.remove(&from);
                map.insert(to, value);
            }
            WalOp::MoveIntent { .. } | WalOp::MoveCommit { .. } => unreachable!(),
        }
    }
    stats::note_replayed(recovery.records_replayed);

    recovery.entries = map.into_iter().collect();
    Ok(recovery)
}

/// Make a torn tail's discard durable so appending can safely resume in the
/// directory: truncate the torn segment to its last valid frame boundary
/// and delete every later segment. Without this, a crash–restart–crash
/// sequence would leave the old torn frame in place, and the *second*
/// recovery would discard every segment written (and acknowledged!) after
/// the restart. No-op when the recovery saw no tear.
pub fn repair_torn_tail(dir: impl AsRef<Path>, recovery: &Recovery) -> io::Result<()> {
    let Some((torn_segment, valid_bytes)) = recovery.torn_at else {
        return Ok(());
    };
    let dir = dir.as_ref();
    let file = fs::OpenOptions::new()
        .write(true)
        .open(crate::log::segment_path(dir, torn_segment))?;
    file.set_len(valid_bytes)?;
    file.sync_all()?;
    for index in (torn_segment + 1)..=recovery.last_segment {
        let path = crate::log::segment_path(dir, index);
        if path.exists() {
            fs::remove_file(path)?;
        }
    }
    if let Ok(handle) = fs::File::open(dir) {
        let _ = handle.sync_all();
    }
    Ok(())
}

/// Name of the shard-layout marker in a sharded base directory: the shard
/// count, written durably (tmp + rename) by the first open *before* any
/// shard directory exists, so the layout is never ambiguous — not even
/// after a crash in the middle of the very first open.
pub const LAYOUT_FILE: &str = "shards.layout";

/// Read the layout marker, if present.
fn read_layout_marker(base: &Path) -> io::Result<Option<usize>> {
    match fs::read_to_string(base.join(LAYOUT_FILE)) {
        Ok(text) => text.trim().parse::<usize>().map(Some).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "corrupt shard-layout marker {}",
                    base.join(LAYOUT_FILE).display()
                ),
            )
        }),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Durably declare `shards` as the base directory's layout (idempotent).
pub(crate) fn write_layout_marker(base: &Path, shards: usize) -> io::Result<()> {
    use std::io::Write;
    fs::create_dir_all(base)?;
    let tmp = base.join("shards.layout.tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        write!(file, "{shards}")?;
        file.sync_all()?;
    }
    fs::rename(&tmp, base.join(LAYOUT_FILE))?;
    if let Ok(handle) = fs::File::open(base) {
        let _ = handle.sync_all();
    }
    Ok(())
}

/// Fail loudly when the on-disk shard layout does not match the requested
/// shard count: recovering a subset (or spreading old shards over a larger
/// count, which re-hashes every key) would silently drop entries. The
/// [`LAYOUT_FILE`] marker is authoritative when present; directories
/// written before the marker existed fall back to comparing the `shard-<i>`
/// directory set. A base directory with neither is a fresh map and passes
/// for any count.
fn validate_shard_layout(base: &Path, shards: usize) -> io::Result<()> {
    if !base.exists() {
        return Ok(());
    }
    if let Some(declared) = read_layout_marker(base)? {
        if declared != shards {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "sharded log directory {} is declared as {declared} shard(s) but {shards} \
                     were requested; recovering with a mismatched shard count would silently \
                     lose or misroute keys",
                    base.display()
                ),
            ));
        }
        return Ok(());
    }
    let mut found: Vec<u64> = Vec::new();
    for entry in fs::read_dir(base)? {
        let entry = entry?;
        if let Some(index) = entry
            .file_name()
            .to_str()
            .and_then(|name| name.strip_prefix("shard-"))
            .and_then(|rest| rest.parse::<u64>().ok())
        {
            // An *empty* shard directory carries no state and is treated as
            // absent: a real shard dir always holds at least its live
            // segment file, while a crash between the creation of the
            // shard dirs on a very first open can leave empty ones behind —
            // those must not brick every later open.
            let path = entry.path();
            if path.is_dir() && fs::read_dir(&path)?.next().is_some() {
                found.push(index);
            }
        }
    }
    if found.is_empty() {
        return Ok(());
    }
    found.sort_unstable();
    let expected: Vec<u64> = (0..shards as u64).collect();
    if found != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "sharded log directory {} holds shard dirs {found:?} but {shards} shard(s) were \
                 requested; recovering with a mismatched shard count would silently lose or \
                 misroute keys",
                base.display()
            ),
        ));
    }
    Ok(())
}

/// What a reopen must durably append so a cross-log resolution survives the
/// next crash. The two phases carry an **ordering contract**: every
/// [`MoveResolutionPlan::state`] record (the stamped deletes that apply a
/// roll-forward or roll-back) must be durable on its shard *before* any
/// [`MoveResolutionPlan::commits`] marker is written — a commit marker makes
/// recovery skip the join for that move, so committing ahead of a
/// cross-shard state fix would strand the unapplied fix forever if another
/// crash hits in between. (Re-running the join instead is safe: it
/// re-judges the same logs to the same verdict, or short-circuits on the
/// now-durable stamped delete.)
pub(crate) struct MoveResolutionPlan {
    /// Per shard: stamped `MoveDelete` records applying the resolution's
    /// state fixes.
    pub state: Vec<Vec<WalRecord>>,
    /// Per (source) shard: `MoveCommit` markers neutralizing the resolved
    /// intents.
    pub commits: Vec<Vec<WalRecord>>,
}

impl MoveResolutionPlan {
    fn empty(shards: usize) -> MoveResolutionPlan {
        MoveResolutionPlan {
            state: vec![Vec::new(); shards],
            commits: vec![Vec::new(); shards],
        }
    }
}

/// The cross-log join (see the [module docs](self)): for every intent in
/// shard `s`'s log without a commit marker there, decide the interrupted
/// move's fate from both logs' stamped halves and fix the recovered entries
/// in place. Returns the append plan a reopen must persist; version stamps
/// for state-changing appends are drawn above the owning shard's
/// `last_version`, which is bumped accordingly.
fn resolve_cross_shard_moves(per: &mut [Recovery]) -> io::Result<MoveResolutionPlan> {
    let shards = per.len();
    let mut plan = MoveResolutionPlan::empty(shards);
    let inserts: Vec<HashSet<u64>> = per
        .iter()
        .map(|r| r.move_inserts.iter().copied().collect())
        .collect();
    let deletes: Vec<HashSet<u64>> = per
        .iter()
        .map(|r| r.move_deletes.iter().copied().collect())
        .collect();
    let mut resolved = 0u64;
    for s in 0..shards {
        let commits: HashSet<u64> = per[s].move_commits.iter().copied().collect();
        let orphans: Vec<MoveIntentInfo> = per[s]
            .intents
            .iter()
            .filter(|i| !commits.contains(&i.move_id))
            .copied()
            .collect();
        for intent in orphans {
            let d = intent.peer_shard as usize;
            if d >= shards || d == s {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "move intent {} in shard {s} names peer shard {} (of {shards}); the log \
                         belongs to a different shard layout",
                        intent.move_id, intent.peer_shard
                    ),
                ));
            }
            let delete_done = deletes[s].contains(&intent.move_id);
            // A stamped delete in the *destination* log is the rollback
            // retraction: the live move already failed and undid its
            // transient copy. Without this check, a client who durably
            // re-inserted the same value at `to` after the retraction would
            // have their acknowledged insert judged as "the in-flight copy"
            // and destroyed.
            let retract_done = deletes[d].contains(&intent.move_id);
            let insert_done = inserts[d].contains(&intent.move_id);
            if !delete_done && !retract_done && insert_done {
                // The destination half is durable but the source half is
                // not — the crash landed between the two shard logs.
                if per[s].entry(intent.from) == Some(intent.value) {
                    // Roll forward: the source still holds the moved value,
                    // so completing the delete yields exactly the state the
                    // finished move would have left.
                    per[s].remove_entry(intent.from);
                    let version = per[s].last_version + 1;
                    per[s].last_version = version;
                    plan.state[s].push(WalRecord {
                        version,
                        op: WalOp::MoveDelete {
                            move_id: intent.move_id,
                            key: intent.from,
                        },
                    });
                } else if per[d].entry(intent.to) == Some(intent.value) {
                    // Roll back: a concurrent committed update consumed or
                    // replaced the source, so the live move would have
                    // failed and retracted its transient destination copy.
                    per[d].remove_entry(intent.to);
                    let version = per[d].last_version + 1;
                    per[d].last_version = version;
                    plan.state[d].push(WalRecord {
                        version,
                        op: WalOp::MoveDelete {
                            move_id: intent.move_id,
                            key: intent.to,
                        },
                    });
                }
                // Neither branch: both halves were already superseded by
                // later committed operations — nothing to fix.
            }
            // delete_done / retract_done → the move completed or rolled
            // back in the logs; !insert_done → it never reached the
            // destination log. Either way the state is consistent; only
            // the commit marker is missing.
            plan.commits[s].push(WalRecord {
                version: u64::MAX, // ordering pin, like the live protocol's markers
                op: WalOp::MoveCommit {
                    move_id: intent.move_id,
                },
            });
            per[s].moves_resolved += 1;
            resolved += 1;
        }
    }
    stats::note_moves_resolved(resolved);
    if resolved > 0 {
        sf_obs::FlightRecorder::global().record(sf_obs::EventKind::MoveResolve, resolved, 0);
    }
    Ok(plan)
}

/// Per-shard recovery of a sharded durable map: validate the shard layout,
/// recover every `shard-<i>` subdirectory, and run the cross-log move
/// resolution. Returns the resolved per-shard recoveries plus the append
/// plan a reopen must persist (respecting its ordering contract).
pub(crate) fn recover_sharded_parts(
    base: &Path,
    shards: usize,
) -> io::Result<(Vec<Recovery>, MoveResolutionPlan)> {
    validate_shard_layout(base, shards)?;
    let mut per = Vec::with_capacity(shards);
    for shard in 0..shards {
        per.push(recover(shard_dir(base, shard))?);
    }
    let plan = resolve_cross_shard_moves(&mut per)?;
    Ok((per, plan))
}

/// Recover a sharded durable map's base directory: the union of the
/// `shard-<i>` subdirectory recoveries (keys are hash-partitioned, so the
/// shards are disjoint) after the cross-log move resolution pass (see the
/// [module docs](self)). `last_version` is the maximum over the shards.
/// Fails loudly when the requested shard count does not match the on-disk
/// shard directories.
pub fn recover_sharded(base: impl AsRef<Path>, shards: usize) -> io::Result<Recovery> {
    let (per, _appends) = recover_sharded_parts(base.as_ref(), shards)?;
    let mut merged = Recovery::default();
    for one in per {
        merged.absorb(one);
    }
    merged.entries.sort_unstable();
    Ok(merged)
}

/// The per-shard log directory of a sharded durable map.
pub fn shard_dir(base: &Path, shard: usize) -> std::path::PathBuf {
    base.join(format!("shard-{shard}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{segment_path, Wal, WalOptions};
    use crate::tempdir::TempDir;

    fn insert(version: u64, key: Key, value: Value) -> WalRecord {
        WalRecord {
            version,
            op: WalOp::Insert { key, value },
        }
    }

    fn delete(version: u64, key: Key) -> WalRecord {
        WalRecord {
            version,
            op: WalOp::Delete { key },
        }
    }

    #[test]
    fn missing_directory_recovers_empty() {
        let dir = TempDir::new("rec-missing");
        let recovery = recover(dir.join("nope")).unwrap();
        assert!(recovery.entries.is_empty());
        assert_eq!(recovery.last_version, 0);
        assert_eq!(recovery.last_segment, 0);
    }

    #[test]
    fn log_only_recovery_replays_in_version_order() {
        let dir = TempDir::new("rec-log");
        let wal = Wal::open(
            dir.path(),
            1,
            WalOptions {
                group: 8,
                ..WalOptions::default()
            },
        )
        .unwrap();
        // Enqueue out of order: replay must still apply 1, 2, 3.
        wal.enqueue(insert(2, 7, 70));
        wal.enqueue(insert(1, 7, 7));
        wal.enqueue(delete(3, 9));
        wal.enqueue(insert(4, 9, 90));
        wal.flush().unwrap();
        let recovery = recover(dir.path()).unwrap();
        assert_eq!(recovery.entries, vec![(7, 70), (9, 90)]);
        assert_eq!(recovery.last_version, 4);
        assert_eq!(recovery.records_replayed, 4);
        assert_eq!(recovery.last_segment, 1);
    }

    #[test]
    fn checkpoint_filters_older_records() {
        let dir = TempDir::new("rec-ckpt");
        let wal = Wal::open(
            dir.path(),
            1,
            WalOptions {
                group: 8,
                ..WalOptions::default()
            },
        )
        .unwrap();
        wal.enqueue(insert(1, 1, 10));
        wal.enqueue(insert(2, 2, 20));
        wal.flush().unwrap();
        let sealed = wal.rotate().unwrap();
        // The image says: at version 5, the map was {1: 11}. A stale record
        // with version <= 5 lurking in the live segment must NOT regress it.
        wal.enqueue(insert(4, 2, 99));
        wal.enqueue(insert(6, 3, 30));
        wal.flush().unwrap();
        wal.install_checkpoint(5, &[(1, 11)], sealed).unwrap();
        let recovery = recover(dir.path()).unwrap();
        assert_eq!(recovery.entries, vec![(1, 11), (3, 30)]);
        assert_eq!(recovery.checkpoint_version, 5);
        assert_eq!(recovery.records_replayed, 1);
        assert_eq!(recovery.last_version, 6);
    }

    #[test]
    fn torn_tail_discards_later_segments_too() {
        let dir = TempDir::new("rec-torn");
        let wal = Wal::open(
            dir.path(),
            1,
            WalOptions {
                group: 8,
                ..WalOptions::default()
            },
        )
        .unwrap();
        wal.enqueue(insert(1, 1, 10));
        wal.enqueue(insert(2, 2, 20));
        wal.flush().unwrap();
        wal.rotate().unwrap();
        wal.enqueue(insert(3, 3, 30));
        wal.flush().unwrap();
        // Corrupt the FIRST segment: the second must be dropped entirely.
        let path = segment_path(dir.path(), 1);
        let mut bytes = fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 5] ^= 0x10;
        fs::write(&path, bytes).unwrap();
        let recovery = recover(dir.path()).unwrap();
        assert_eq!(recovery.entries, vec![(1, 10)]);
        assert!(recovery.torn_bytes > 0);
        assert_eq!(recovery.records_scanned, 1);
    }

    #[test]
    fn corrupt_checkpoint_is_a_hard_error() {
        let dir = TempDir::new("rec-badckpt");
        fs::write(dir.join(CHECKPOINT_FILE), b"garbage").unwrap();
        assert!(recover(dir.path()).is_err());
    }

    #[test]
    fn sharded_recovery_merges_disjoint_shards() {
        let dir = TempDir::new("rec-sharded");
        for shard in 0..2usize {
            let wal = Wal::open(
                shard_dir(dir.path(), shard),
                1,
                WalOptions {
                    group: 8,
                    ..WalOptions::default()
                },
            )
            .unwrap();
            wal.enqueue(insert(shard as u64 + 1, shard as u64 * 100, 1));
            wal.flush().unwrap();
        }
        let recovery = recover_sharded(dir.path(), 2).unwrap();
        assert_eq!(recovery.entries, vec![(0, 1), (100, 1)]);
        assert_eq!(recovery.last_version, 2);
    }

    #[test]
    fn sharded_recovery_rejects_a_mismatched_shard_count() {
        let dir = TempDir::new("rec-shardcount");
        for shard in 0..4usize {
            let wal = Wal::open(
                shard_dir(dir.path(), shard),
                1,
                WalOptions {
                    group: 8,
                    ..WalOptions::default()
                },
            )
            .unwrap();
            wal.enqueue(insert(1, shard as u64, 1));
            wal.flush().unwrap();
        }
        // Fewer shards than on disk: silent subset recovery is the footgun.
        let err = recover_sharded(dir.path(), 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // More shards than on disk: keys would re-hash across empty shards.
        let err = recover_sharded(dir.path(), 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // The matching count recovers.
        let recovery = recover_sharded(dir.path(), 4).unwrap();
        assert_eq!(recovery.entries.len(), 4);
        // A missing base (fresh map) passes for any count.
        assert!(recover_sharded(dir.join("fresh"), 3).is_ok());
    }

    /// Write one shard's records directly and return its `Wal` for more.
    fn shard_wal(dir: &TempDir, shard: usize) -> Wal {
        Wal::open(
            shard_dir(dir.path(), shard),
            1,
            WalOptions {
                group: 8,
                ..WalOptions::default()
            },
        )
        .unwrap()
    }

    fn intent(move_id: u64, peer: u64, from: Key, to: Key, value: Value) -> WalRecord {
        WalRecord {
            version: 0,
            op: WalOp::MoveIntent {
                move_id,
                peer_shard: peer,
                from,
                to,
                value,
            },
        }
    }

    fn move_insert(version: u64, move_id: u64, key: Key, value: Value) -> WalRecord {
        WalRecord {
            version,
            op: WalOp::MoveInsert {
                move_id,
                key,
                value,
            },
        }
    }

    fn move_delete(version: u64, move_id: u64, key: Key) -> WalRecord {
        WalRecord {
            version,
            op: WalOp::MoveDelete { move_id, key },
        }
    }

    fn move_commit(move_id: u64) -> WalRecord {
        WalRecord {
            version: u64::MAX, // the live protocol's ordering pin
            op: WalOp::MoveCommit { move_id },
        }
    }

    #[test]
    fn orphaned_intent_with_durable_insert_rolls_forward() {
        // Crash landed between the two shard logs: the destination insert
        // is durable, the source delete is not — the classic duplicate
        // window. Resolution must complete the move.
        let dir = TempDir::new("rec-rollfwd");
        let src = shard_wal(&dir, 0);
        src.enqueue(insert(1, 10, 77)); // key 10 -> 77 lives on shard 0
        src.enqueue(intent(900, 1, 10, 20, 77));
        src.flush().unwrap();
        let dst = shard_wal(&dir, 1);
        dst.enqueue(move_insert(1, 900, 20, 77));
        dst.flush().unwrap();

        let recovery = recover_sharded(dir.path(), 2).unwrap();
        assert_eq!(recovery.entries, vec![(20, 77)], "exactly one copy");
        assert_eq!(recovery.moves_resolved, 1);
    }

    #[test]
    fn orphaned_intent_with_superseded_source_rolls_back() {
        // The source key was concurrently deleted and re-inserted with a
        // different value before the crash: the live move would have failed
        // its compare-and-delete and retracted the destination copy.
        let dir = TempDir::new("rec-rollback");
        let src = shard_wal(&dir, 0);
        src.enqueue(insert(1, 10, 77));
        src.enqueue(intent(901, 1, 10, 20, 77));
        src.enqueue(delete(2, 10)); // concurrent committed delete...
        src.enqueue(insert(3, 10, 88)); // ...and re-insert of a new value
        src.flush().unwrap();
        let dst = shard_wal(&dir, 1);
        dst.enqueue(move_insert(1, 901, 20, 77));
        dst.flush().unwrap();

        let recovery = recover_sharded(dir.path(), 2).unwrap();
        assert_eq!(
            recovery.entries,
            vec![(10, 88)],
            "the transient destination copy is retracted, the concurrent \
             update survives"
        );
        assert_eq!(recovery.moves_resolved, 1);
    }

    #[test]
    fn orphaned_intent_without_durable_insert_is_a_noop() {
        // Crash before the destination insert became durable: the move
        // never happened; the source entry simply stays.
        let dir = TempDir::new("rec-noopintent");
        let src = shard_wal(&dir, 0);
        src.enqueue(insert(1, 10, 77));
        src.enqueue(intent(902, 1, 10, 20, 77));
        src.flush().unwrap();
        shard_wal(&dir, 1); // empty destination log

        let recovery = recover_sharded(dir.path(), 2).unwrap();
        assert_eq!(recovery.entries, vec![(10, 77)]);
        assert_eq!(recovery.moves_resolved, 1, "still neutralized");
    }

    #[test]
    fn completed_move_with_torn_commit_marker_is_left_alone() {
        // Both halves durable, only the commit marker torn away: the state
        // is already consistent; resolution must not undo the delete.
        let dir = TempDir::new("rec-complete");
        let src = shard_wal(&dir, 0);
        src.enqueue(insert(1, 10, 77));
        src.enqueue(intent(903, 1, 10, 20, 77));
        src.enqueue(move_delete(2, 903, 10));
        src.flush().unwrap();
        let dst = shard_wal(&dir, 1);
        dst.enqueue(move_insert(1, 903, 20, 77));
        dst.flush().unwrap();

        let recovery = recover_sharded(dir.path(), 2).unwrap();
        assert_eq!(recovery.entries, vec![(20, 77)]);
        assert_eq!(recovery.moves_resolved, 1);
    }

    #[test]
    fn committed_intents_skip_the_join() {
        let dir = TempDir::new("rec-committed");
        let src = shard_wal(&dir, 0);
        src.enqueue(intent(904, 1, 10, 20, 77));
        src.enqueue(move_delete(2, 904, 10));
        src.enqueue(move_commit(904));
        // Key 10 was later legitimately re-inserted: a naive re-resolution
        // of the (already committed) intent would wrongly delete it.
        src.enqueue(insert(3, 10, 99));
        src.flush().unwrap();
        let dst = shard_wal(&dir, 1);
        dst.enqueue(move_insert(1, 904, 20, 77));
        dst.flush().unwrap();

        let recovery = recover_sharded(dir.path(), 2).unwrap();
        assert_eq!(recovery.entries, vec![(10, 99), (20, 77)]);
        assert_eq!(recovery.moves_resolved, 0);
        assert_eq!(
            recovery.last_version, 3,
            "protocol markers' ordering-pin versions (0 / u64::MAX) must \
             not leak into last_version"
        );
        assert_eq!(recovery.max_move_id, 904);
    }

    #[test]
    fn durable_retraction_protects_a_reinserted_destination_value() {
        // The live move rolled back: its retraction MoveDelete is durable in
        // the destination log, but the commit marker never made it to the
        // source log. A client then durably re-inserted the *same value* at
        // the destination key. The join must honor the stamped retraction
        // and leave the acknowledged insert alone — judging by value alone
        // would destroy it.
        let dir = TempDir::new("rec-retract");
        let src = shard_wal(&dir, 0);
        src.enqueue(insert(1, 10, 77));
        src.enqueue(intent(906, 1, 10, 20, 77));
        src.enqueue(delete(2, 10)); // the concurrent update that failed the move
        src.flush().unwrap();
        let dst = shard_wal(&dir, 1);
        dst.enqueue(move_insert(1, 906, 20, 77));
        dst.enqueue(move_delete(2, 906, 20)); // durable rollback retraction
        dst.enqueue(insert(3, 20, 77)); // acknowledged client re-insert
        dst.flush().unwrap();

        let recovery = recover_sharded(dir.path(), 2).unwrap();
        assert_eq!(
            recovery.entries,
            vec![(20, 77)],
            "the re-inserted value survives the join"
        );
        assert_eq!(recovery.moves_resolved, 1);
    }

    #[test]
    fn empty_shard_directories_do_not_brick_the_layout_validation() {
        // A crash between the shard-directory creations of a very first
        // open leaves empty dirs; they carry no state and must be treated
        // as absent rather than rejecting every later open.
        let dir = TempDir::new("rec-emptyshard");
        fs::create_dir_all(shard_dir(dir.path(), 0)).unwrap();
        let recovery = recover_sharded(dir.path(), 2).unwrap();
        assert!(recovery.entries.is_empty());
        // A *populated* mismatch still fails loudly.
        let wal = shard_wal(&dir, 0);
        wal.enqueue(insert(1, 1, 1));
        wal.flush().unwrap();
        drop(wal);
        assert!(recover_sharded(dir.path(), 2).is_err());
    }

    #[test]
    fn resolution_rejects_an_out_of_range_peer_shard() {
        let dir = TempDir::new("rec-badpeer");
        let src = shard_wal(&dir, 0);
        src.enqueue(intent(905, 7, 10, 20, 77)); // peer 7 of 2 shards
        src.flush().unwrap();
        shard_wal(&dir, 1);
        let err = recover_sharded(dir.path(), 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
