//! The write-ahead log: segment files driven by an asynchronous group-commit
//! writer thread (or, as a fallback, by leader-based group commit).
//!
//! One [`Wal`] owns one directory. Redo records are *enqueued* by commit
//! hooks into a **bounded submission ring** (cheap: a buffer push under a
//! mutex, blocking only when the ring is full — backpressure, never drops)
//! and made durable by a dedicated **writer thread** that drains the ring in
//! batches: it collects up to `group` records, waiting up to the batching
//! *window* (`WalOptions::window`, the `SF_WAL_WINDOW_US` knob) for
//! stragglers, then performs one `write` + one `fsync` and wakes every
//! mutator parked in [`Wal::sync_to`]. A mutator therefore **never executes
//! `write`/`fsync` itself** — the paper's core trick (move the expensive,
//! abort-prone work off the mutator path into a dedicated thread) applied to
//! durability.
//!
//! Two fallback modes remain:
//!
//! * [`WriterMode::Leader`] (`SF_WAL_WRITER=leader`) restores the previous
//!   design: the first [`Wal::sync_to`] waiter becomes the flusher, drains up
//!   to `group` pending records into one `write` + `fsync`, and wakes the
//!   waiters the batch covered — the classic group commit of
//!   `brianshih1/little-key-value-db`'s redo log.
//! * `group == 0` selects **buffered** mode: no writer thread, no per-op
//!   sync; records are written only by checkpoints, [`Wal::flush`], and drop.
//!
//! ## Checkpoint triggers
//!
//! The writer thread also evaluates the **checkpoint triggers**: a size
//! threshold (records since the last checkpoint, `SF_WAL_CKPT`) and a time
//! interval (`SF_WAL_CKPT_MS`). When either fires, the writer invokes the
//! hook installed by [`Wal::set_checkpoint_hook`] (the durable map's
//! checkpoint, guarded by a `try_lock` of its checkpoint lock). A hook that
//! reports "could not run" — e.g. the checkpoint lock is held by an
//! in-flight cross-shard move — leaves the trigger **deferred**: the writer
//! simply retries on its next wakeup, so a purely move-driven workload still
//! checkpoints as soon as the move scope drops the lock.
//!
//! ## Failure (poisoning)
//!
//! The log promises callers durability, so an `fsync`/`write` failure cannot
//! be swallowed: the writer marks the log **poisoned** with the error and
//! wakes everyone. Every parked [`Wal::sync_to`] waiter then panics with the
//! original I/O error (instead of hanging forever), as does any later
//! enqueue; [`Wal::flush`] surfaces it as an `Err`.
//!
//! ## Files
//!
//! * `segment-NNNNNNNN.wal` — numbered log segments of record frames
//!   (see [`crate::record`]). Appends go to the highest segment; a
//!   checkpoint *seals* it (flush + switch to the next index) so the sealed
//!   prefix can be deleted once the checkpoint image is durable.
//! * `checkpoint.ck` — one checksummed frame holding the snapshot version
//!   and the full entry set. Written as `checkpoint.tmp` + fsync + atomic
//!   rename, so a crash mid-checkpoint leaves the previous image intact.
//!
//! ## Ordering
//!
//! Records carry their STM commit version. Within one flush batch the
//! writer sorts by version, so the file order tracks commit order; across
//! batches a preempted committer can still enqueue late. Recovery therefore
//! never trusts file order alone: it sorts the surviving records by version
//! before replay (see [`crate::recovery`]), which makes the log's contract
//! independent of scheduling. The ring itself is FIFO, so a record that was
//! *fsynced* before another was *enqueued* (the cross-shard move protocol's
//! intent-before-halves ordering) is durable strictly first.

use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard};
use std::thread::{JoinHandle, ThreadId};
use std::time::{Duration, Instant};

use sf_obs::{EventKind, FlightRecorder};
use sf_tree::{Key, Value};

use crate::record::{write_frame, WalRecord};
use crate::stats::LogStats;

#[cfg(test)]
use crate::stats;

/// Name of the durable checkpoint image inside a log directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.ck";
/// Scratch name the checkpoint is written under before the atomic rename.
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// Who performs the `write`+`fsync` of a group-commit batch
/// (the `SF_WAL_WRITER` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriterMode {
    /// A dedicated writer thread drains the submission ring; mutators only
    /// enqueue and park. The default.
    #[default]
    Thread,
    /// Leader-based group commit: the first waiter flushes the batch inline
    /// (the pre-writer-thread design, kept as a fallback).
    Leader,
}

/// Tuning of a [`Wal`] (and of the [`crate::DurableMap`] that owns it).
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Maximum records one group-commit batch drains into a single
    /// `write` + `fsync` (the `SF_WAL_GROUP` knob). `0` selects **buffered**
    /// mode: mutations return without waiting for durability and the log is
    /// only written/synced by checkpoints, [`Wal::flush`], and drop — fast,
    /// but a crash loses the buffered tail.
    pub group: usize,
    /// Auto-checkpoint size threshold in records (`SF_WAL_CKPT`): once at
    /// least this many records have been logged since the last checkpoint,
    /// the trigger fires. `0` disables the size trigger.
    pub auto_checkpoint: u64,
    /// Who flushes batches (`SF_WAL_WRITER`): the dedicated writer thread
    /// (default) or the leader-based fallback. Irrelevant in buffered mode.
    pub writer: WriterMode,
    /// Batching window (`SF_WAL_WINDOW_US`): in thread mode, how long the
    /// writer waits for a partial batch to fill up to `group` records before
    /// flushing what it has. Zero flushes immediately (one batch per wakeup).
    pub window: Duration,
    /// Submission-ring capacity (`SF_WAL_RING`): in thread mode, an enqueue
    /// against a full ring blocks until the writer drains space (bounded
    /// memory; records are never dropped).
    pub ring_capacity: usize,
    /// Time-based checkpoint trigger (`SF_WAL_CKPT_MS`): checkpoint when at
    /// least this much time has passed since the last one *and* records have
    /// been logged since. `None` disables the time trigger. Only evaluated
    /// by the writer thread (thread mode).
    pub checkpoint_interval: Option<Duration>,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            group: 128,
            auto_checkpoint: 0,
            writer: WriterMode::Thread,
            window: Duration::from_micros(100),
            ring_capacity: 1024,
            checkpoint_interval: None,
        }
    }
}

/// Records waiting to be flushed, with their assigned sequence numbers.
struct PendingState {
    /// FIFO ring of enqueued-but-not-yet-written records.
    pending: VecDeque<WalRecord>,
    /// Sequence number of the last enqueued record (first record is 1).
    enqueued_seq: u64,
    /// Sequence number through which records are durably on disk.
    durable_seq: u64,
    /// A leader is currently writing a batch (leader mode only).
    flushing: bool,
    /// The writer thread should drain everything promptly (an explicit
    /// flush/rotate is waiting); cleared once `durable_seq` catches up.
    drain_goal: u64,
    /// The Wal is being dropped: the writer drains and exits.
    shutdown: bool,
    /// A write/fsync failed; the durability promise is broken for good.
    /// Waiters panic with this message, `flush` returns it as an error.
    poisoned: Option<String>,
}

/// The current segment file.
struct SegmentState {
    file: File,
    index: u64,
}

/// Trigger-driven checkpoint callback (see [`Wal::set_checkpoint_hook`]):
/// returns `true` when the checkpoint ran (or is no longer needed), `false`
/// when it must stay deferred.
pub type CheckpointHook = Box<dyn FnMut(&WalShared) -> bool + Send>;

/// The state shared between the [`Wal`] façade, its enqueueing mutators, and
/// the writer thread. The thread holds an `Arc<WalShared>` (never the `Wal`
/// itself, so dropping the last `Wal` reference always shuts it down).
pub struct WalShared {
    dir: PathBuf,
    options: WalOptions,
    state: Mutex<PendingState>,
    /// Waiters for durability progress (sync_to / flush).
    flushed: Condvar,
    /// Producers waiting for ring space (thread mode backpressure).
    space: Condvar,
    /// The writer thread waiting for work / drain requests / shutdown.
    work: Condvar,
    segment: Mutex<SegmentState>,
    records_since_checkpoint: AtomicU64,
    last_checkpoint_at: Mutex<Instant>,
    /// Trigger-driven checkpoint hook, installed by the durable map. Returns
    /// `true` when the checkpoint ran (or is no longer needed), `false` when
    /// it must stay deferred (checkpoint lock held by a move in flight).
    checkpoint_hook: Mutex<Option<CheckpointHook>>,
    /// Identity of the writer thread, so re-entrant flushes (a checkpoint
    /// hook rotating the log *from* the writer thread) drain inline instead
    /// of deadlocking on themselves.
    writer_thread: Mutex<Option<ThreadId>>,
    /// Test-only failure injection: the next flush batch fails its fsync.
    #[doc(hidden)]
    pub fail_next_flush: AtomicBool,
    /// This log's own counters and latency histograms (every note
    /// double-books into the process-wide `stats` aggregate).
    stats: LogStats,
}

/// A commit-ordered write-ahead log over one directory. See the
/// [module docs](self).
pub struct Wal {
    shared: Arc<WalShared>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.shared.dir)
            .field("options", &self.shared.options)
            .finish()
    }
}

impl std::fmt::Debug for PendingState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingState")
            .field("pending", &self.pending.len())
            .field("enqueued_seq", &self.enqueued_seq)
            .field("durable_seq", &self.durable_seq)
            .field("flushing", &self.flushing)
            .field("shutdown", &self.shutdown)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

/// Path of segment `index` inside `dir`.
pub fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("segment-{index:08}.wal"))
}

/// Parse a file name of the `segment-NNNNNNNN.wal` form into its index.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("segment-")?
        .strip_suffix(".wal")?
        .parse()
        .ok()
}

/// Best-effort fsync of a directory (so renames and creations inside it are
/// durable). Ignored on platforms where directories cannot be opened.
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

impl WalShared {
    /// The directory this log writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records enqueued since the last completed checkpoint (the
    /// auto-checkpoint size trigger reads this).
    pub fn records_since_checkpoint(&self) -> u64 {
        // sf-lint: allow(relaxed-atomic, checkpoint-trigger heuristic; a stale count defers the checkpoint by at most one record)
        self.records_since_checkpoint.load(Ordering::Relaxed)
    }

    /// This log's own statistics (counters and latency histograms), scoped
    /// to this instance: concurrent logs — other shards, other tests — do
    /// not show up here. The process-wide aggregate stays available through
    /// [`stats::snapshot`].
    pub fn stats(&self) -> &LogStats {
        &self.stats
    }

    fn lock_state(&self) -> MutexGuard<'_, PendingState> {
        self.state.lock()
    }

    fn lock_segment(&self) -> MutexGuard<'_, SegmentState> {
        self.segment.lock()
    }

    fn on_writer_thread(&self) -> bool {
        *self.writer_thread.lock() == Some(std::thread::current().id())
    }

    fn thread_mode(&self) -> bool {
        self.options.group > 0 && self.options.writer == WriterMode::Thread
    }

    /// Enqueue one record and return its sequence number. In thread mode a
    /// full ring blocks until the writer frees space (records are never
    /// dropped).
    ///
    /// # Panics
    /// Panics when the log is poisoned: the caller is about to be promised
    /// durability the log can no longer provide.
    pub fn enqueue(&self, record: WalRecord) -> u64 {
        let mut state = self.lock_state();
        if self.thread_mode() {
            while state.pending.len() >= self.options.ring_capacity
                && state.poisoned.is_none()
                && !state.shutdown
            {
                self.space.wait(&mut state);
            }
        }
        if let Some(reason) = &state.poisoned {
            panic!("WAL poisoned: {reason}");
        }
        state.pending.push_back(record);
        state.enqueued_seq += 1;
        self.records_since_checkpoint
            // sf-lint: allow(relaxed-atomic, checkpoint-trigger counter; readers treat it as a heuristic threshold)
            .fetch_add(1, Ordering::Relaxed);
        self.stats.note_ring_depth(state.pending.len() as u64);
        let seq = state.enqueued_seq;
        drop(state);
        self.work.notify_one();
        seq
    }

    /// Block until every record with a sequence number `<= seq` is durably
    /// on disk. In thread mode the caller parks until the writer thread's
    /// batch covers it; in leader mode the first waiter flushes batches
    /// itself. In buffered mode (`group == 0`) this returns immediately.
    ///
    /// # Panics
    /// Panics when the log is (or becomes) poisoned: the caller was promised
    /// durability and the log cannot provide it, and hanging forever would
    /// hide the failure.
    pub fn sync_to(&self, seq: u64) {
        if self.options.group == 0 {
            return;
        }
        let mut state = self.lock_state();
        loop {
            if let Some(reason) = &state.poisoned {
                panic!("WAL poisoned: {reason}");
            }
            if state.durable_seq >= seq {
                return;
            }
            if self.thread_mode() || state.flushing {
                // Thread mode always parks; in leader mode a follower parks
                // while the current leader runs the batch.
                self.flushed.wait(&mut state);
            } else {
                state = self.flush_batch(state, false);
            }
        }
    }

    /// Write and sync everything currently pending (used by checkpoints,
    /// shutdown, and buffered mode's explicit durability points). Safe to
    /// call from the writer thread itself (a checkpoint hook rotating the
    /// log): the drain then runs inline.
    pub fn flush(&self) -> io::Result<()> {
        if self.thread_mode() && !self.on_writer_thread() {
            let mut state = self.lock_state();
            let goal = state.enqueued_seq;
            state.drain_goal = state.drain_goal.max(goal);
            self.work.notify_one();
            loop {
                if let Some(reason) = &state.poisoned {
                    return Err(io::Error::other(reason.clone()));
                }
                if state.durable_seq >= goal {
                    return Ok(());
                }
                self.flushed.wait(&mut state);
            }
        }
        // Leader / buffered mode, or the writer thread draining inline.
        let mut state = self.lock_state();
        while state.durable_seq < state.enqueued_seq {
            if let Some(reason) = &state.poisoned {
                return Err(io::Error::other(reason.clone()));
            }
            if state.flushing {
                self.flushed.wait(&mut state);
                continue;
            }
            state = self.flush_batch(state, self.on_writer_thread());
        }
        if let Some(reason) = &state.poisoned {
            return Err(io::Error::other(reason.clone()));
        }
        Ok(())
    }

    /// Write one batch (up to `group` records, or all pending when buffered)
    /// with one `write` + one `fsync`, and wake waiters. Consumes and
    /// returns the state lock. On I/O failure the log is poisoned instead of
    /// panicking; callers observe it through their own paths.
    fn flush_batch<'a>(
        &'a self,
        mut state: MutexGuard<'a, PendingState>,
        by_writer_thread: bool,
    ) -> MutexGuard<'a, PendingState> {
        debug_assert!(!state.flushing);
        let take = if self.options.group == 0 {
            state.pending.len()
        } else {
            state.pending.len().min(self.options.group)
        };
        if take == 0 {
            return state;
        }
        state.flushing = true;
        let mut batch: Vec<WalRecord> = state.pending.drain(..take).collect();
        drop(state);

        // Best-effort: make the file order track commit order within the
        // batch (recovery sorts globally anyway, see the module docs).
        batch.sort_by_key(|r| r.version);
        let mut buf = Vec::with_capacity(take * 64);
        for record in &batch {
            record.encode_into(&mut buf);
        }
        let io_started = Instant::now();
        let result: io::Result<()> = (|| {
            // sf-lint: allow(relaxed-atomic, fault-injection flag for crash tests; no ordering contract with real I/O)
            if self.fail_next_flush.swap(false, Ordering::Relaxed) {
                return Err(io::Error::other("injected WAL flush failure"));
            }
            let mut segment = self.lock_segment();
            segment.file.write_all(&buf)?;
            segment.file.sync_data()?;
            Ok(())
        })();
        let io_elapsed = io_started.elapsed();

        let mut state = self.lock_state();
        state.flushing = false;
        match result {
            Ok(()) => {
                self.stats
                    .note_batch(take as u64, buf.len() as u64, by_writer_thread);
                self.stats.note_fsync(io_elapsed);
                FlightRecorder::global().record(
                    EventKind::BatchFlush,
                    take as u64,
                    buf.len() as u64,
                );
                state.durable_seq += take as u64;
            }
            Err(error) => {
                // The records were drained but not written; the promise is
                // broken for every current and future waiter. Poison, and
                // wake everyone so each surfaces the error instead of
                // blocking on the condvar forever.
                state
                    .poisoned
                    .get_or_insert_with(|| format!("WAL write/sync failed: {error}"));
            }
        }
        self.flushed.notify_all();
        self.space.notify_all();
        state
    }

    /// Seal the current segment: flush everything pending into it, then
    /// switch appends to a fresh segment. Returns the sealed segment's
    /// index; every record enqueued before this call is in a segment
    /// `<= sealed`, so a snapshot taken *after* the rotation covers the
    /// sealed prefix entirely.
    pub fn rotate(&self) -> io::Result<u64> {
        // Drain the pending buffer into the old segment first.
        self.flush()?;
        let mut segment = self.lock_segment();
        // Records enqueued after flush() returned but before we took the
        // segment lock are still pending (the writer blocks on the segment
        // lock we now hold) and will land in the *new* segment, which is
        // exactly what the checkpoint protocol needs (their versions may
        // exceed the snapshot version). But the sealed file itself must be
        // fully durable:
        segment.file.sync_data()?;
        let sealed = segment.index;
        let next = sealed + 1;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, next))?;
        sync_dir(&self.dir);
        *segment = SegmentState { file, index: next };
        Ok(sealed)
    }

    /// Durably install a checkpoint image: `(version, entries)` is written
    /// to `checkpoint.tmp`, synced, atomically renamed over
    /// [`CHECKPOINT_FILE`], and every segment with index `<= sealed_through`
    /// is deleted (their records all have versions `<= version` and are
    /// covered by the image).
    pub fn install_checkpoint(
        &self,
        version: u64,
        entries: &[(Key, Value)],
        sealed_through: u64,
    ) -> io::Result<()> {
        crate::chk::sched_point(crate::chk::SchedEvent::Checkpoint);
        let mut payload = Vec::with_capacity(16 + entries.len() * 16);
        payload.extend_from_slice(&version.to_le_bytes());
        payload.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for &(key, value) in entries {
            payload.extend_from_slice(&key.to_le_bytes());
            payload.extend_from_slice(&value.to_le_bytes());
        }
        let mut framed = Vec::with_capacity(payload.len() + 12);
        write_frame(&mut framed, &payload);

        let tmp = self.dir.join(CHECKPOINT_TMP);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&framed)?;
            file.sync_data()?;
        }
        fs::rename(&tmp, self.dir.join(CHECKPOINT_FILE))?;
        sync_dir(&self.dir);

        // The image is durable; the sealed prefix of the log is now garbage.
        for index in (1..=sealed_through).rev() {
            let path = segment_path(&self.dir, index);
            if path.exists() {
                fs::remove_file(path)?;
            } else {
                break;
            }
        }
        // sf-lint: allow(relaxed-atomic, trigger-counter reset; the checkpoint itself is ordered by the wal-state lock)
        self.records_since_checkpoint.store(0, Ordering::Relaxed);
        *self.last_checkpoint_at.lock() = Instant::now();
        self.stats.note_checkpoint();
        FlightRecorder::global().record(EventKind::CheckpointDone, entries.len() as u64, version);
        Ok(())
    }

    /// True when either checkpoint trigger (size or time) has fired.
    fn checkpoint_due(&self) -> bool {
        let logged = self.records_since_checkpoint();
        if logged == 0 {
            return false;
        }
        if self.options.auto_checkpoint > 0 && logged >= self.options.auto_checkpoint {
            return true;
        }
        if let Some(interval) = self.options.checkpoint_interval {
            let last = *self.last_checkpoint_at.lock();
            if last.elapsed() >= interval {
                return true;
            }
        }
        false
    }

    /// Run the installed checkpoint hook if a trigger is due. Returns `true`
    /// when the trigger is no longer pending (ran, or nothing to do).
    fn run_checkpoint_hook(&self) -> bool {
        if !self.checkpoint_due() {
            return true;
        }
        FlightRecorder::global().record(
            EventKind::CheckpointTrigger,
            self.records_since_checkpoint(),
            0,
        );
        let mut hook = self.checkpoint_hook.lock();
        let ran = match hook.as_mut() {
            // The hook try-locks the durable map's checkpoint lock; `false`
            // means a move (or an explicit checkpoint) holds it — stay
            // deferred and let the writer retry on its next wakeup.
            Some(hook) => hook(self),
            None => true,
        };
        if !ran {
            FlightRecorder::global().record(
                EventKind::CheckpointDefer,
                self.records_since_checkpoint(),
                0,
            );
        }
        ran
    }

    /// The writer thread's main loop: drain batches honoring the batching
    /// window, evaluate checkpoint triggers between batches, exit on
    /// shutdown after draining the ring.
    fn writer_loop(self: &Arc<Self>) {
        *self.writer_thread.lock() = Some(std::thread::current().id());
        let group = self.options.group;
        let window = self.options.window;
        // How long to sleep when idle: short while a deferred checkpoint is
        // pending (so the trigger retries promptly once the blocking move
        // finishes), long otherwise (shutdown/enqueue wake us anyway).
        let mut checkpoint_deferred = false;
        loop {
            let mut state = self.lock_state();
            if state.poisoned.is_some() {
                // The promise is broken; nothing more to write. Park until
                // shutdown so waiters (already woken) can observe the error.
                if state.shutdown {
                    return;
                }
                self.work.wait_for(&mut state, Duration::from_millis(50));
                if state.shutdown {
                    return;
                }
                continue;
            }
            if state.pending.is_empty() {
                if state.shutdown {
                    return;
                }
                let idle = if checkpoint_deferred {
                    Duration::from_millis(1)
                } else {
                    Duration::from_millis(100)
                };
                self.work.wait_for(&mut state, idle);
                if state.pending.is_empty() {
                    drop(state);
                    checkpoint_deferred = !self.run_checkpoint_hook();
                    continue;
                }
            }
            // Batching window: wait for the batch to fill up to `group`
            // records, but never past the window deadline, and not at all
            // when an explicit drain is waiting or we are shutting down.
            let deadline = Instant::now() + window;
            while state.pending.len() < group
                && state.drain_goal <= state.durable_seq
                && !state.shutdown
                && state.poisoned.is_none()
            {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                self.work.wait_for(&mut state, deadline - now);
            }
            state = self.flush_batch(state, true);
            if state.drain_goal <= state.durable_seq {
                state.drain_goal = 0;
            }
            drop(state);
            checkpoint_deferred = !self.run_checkpoint_hook();
        }
    }
}

impl Wal {
    /// Open (creating if necessary) the log directory and start appending to
    /// a fresh segment with index `start_segment` (which must be above every
    /// existing segment — recovery hands the caller `last_segment + 1`). In
    /// thread mode (the default, `group > 0`) this spawns the dedicated
    /// group-commit writer thread; it is joined when the `Wal` drops.
    pub fn open(
        dir: impl Into<PathBuf>,
        start_segment: u64,
        options: WalOptions,
    ) -> io::Result<Wal> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&dir, start_segment))?;
        sync_dir(&dir);
        let shared = Arc::new(WalShared {
            dir,
            options,
            state: Mutex::named(
                PendingState {
                    pending: VecDeque::new(),
                    enqueued_seq: 0,
                    durable_seq: 0,
                    flushing: false,
                    drain_goal: 0,
                    shutdown: false,
                    poisoned: None,
                },
                "wal.state",
            ),
            flushed: Condvar::new(),
            space: Condvar::new(),
            work: Condvar::new(),
            segment: Mutex::named(
                SegmentState {
                    file,
                    index: start_segment,
                },
                "wal.segment",
            ),
            records_since_checkpoint: AtomicU64::new(0),
            last_checkpoint_at: Mutex::named(Instant::now(), "wal.checkpoint_at"),
            checkpoint_hook: Mutex::named(None, "wal.hook"),
            writer_thread: Mutex::named(None, "wal.writer_id"),
            fail_next_flush: AtomicBool::new(false),
            stats: LogStats::new(),
        });
        let writer = if shared.thread_mode() {
            let thread_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("sf-wal-writer".to_string())
                    .spawn(move || thread_shared.writer_loop())
                    .map_err(io::Error::other)?,
            )
        } else {
            None
        };
        Ok(Wal {
            shared,
            writer: Mutex::named(writer, "wal.writer_handle"),
        })
    }

    /// The shared core (enqueue/sync/rotate live there; checkpoint hooks
    /// receive it so they can drive the log without owning the `Wal`).
    pub fn shared(&self) -> &Arc<WalShared> {
        &self.shared
    }

    /// Install the trigger-driven checkpoint hook evaluated by the writer
    /// thread. The hook returns `true` when it ran (or decided nothing is
    /// needed) and `false` when it must stay deferred (e.g. the checkpoint
    /// lock is held by an in-flight cross-shard move).
    pub fn set_checkpoint_hook(&self, hook: CheckpointHook) {
        *self.shared.checkpoint_hook.lock() = Some(hook);
    }

    /// The directory this log writes to.
    pub fn dir(&self) -> &Path {
        self.shared.dir()
    }

    /// Records enqueued since the last completed checkpoint.
    pub fn records_since_checkpoint(&self) -> u64 {
        self.shared.records_since_checkpoint()
    }

    /// See [`WalShared::stats`].
    pub fn stats(&self) -> &LogStats {
        self.shared.stats()
    }

    /// See [`WalShared::enqueue`].
    pub fn enqueue(&self, record: WalRecord) -> u64 {
        self.shared.enqueue(record)
    }

    /// See [`WalShared::sync_to`].
    pub fn sync_to(&self, seq: u64) {
        self.shared.sync_to(seq)
    }

    /// See [`WalShared::flush`].
    pub fn flush(&self) -> io::Result<()> {
        self.shared.flush()
    }

    /// See [`WalShared::rotate`].
    pub fn rotate(&self) -> io::Result<u64> {
        self.shared.rotate()
    }

    /// See [`WalShared::install_checkpoint`].
    pub fn install_checkpoint(
        &self,
        version: u64,
        entries: &[(Key, Value)],
        sealed_through: u64,
    ) -> io::Result<()> {
        self.shared
            .install_checkpoint(version, entries, sealed_through)
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Clean shutdown: drain the ring, then join the writer thread (crash
        // tests bypass this by never dropping the map). The writer drains
        // everything pending before honoring the shutdown flag.
        let writer = self.writer.lock().take();
        {
            let mut state = self.shared.lock_state();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        if let Some(writer) = writer {
            let _ = writer.join();
        }
        // Leader/buffered mode (or a poisoned writer that exited early with
        // records still pending): persist what we can inline.
        let _ = self.shared.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{scan_segment, WalOp};
    use crate::tempdir::TempDir;

    fn record(version: u64, key: Key) -> WalRecord {
        WalRecord {
            version,
            op: WalOp::Insert {
                key,
                value: key * 10,
            },
        }
    }

    fn options(group: usize, writer: WriterMode) -> WalOptions {
        WalOptions {
            group,
            writer,
            ..WalOptions::default()
        }
    }

    fn both_modes() -> [WriterMode; 2] {
        [WriterMode::Thread, WriterMode::Leader]
    }

    #[test]
    fn enqueue_sync_roundtrip_lands_records_in_the_segment() {
        for mode in both_modes() {
            let dir = TempDir::new("wal-roundtrip");
            let wal = Wal::open(dir.path(), 1, options(4, mode)).unwrap();
            let mut last = 0;
            for i in 1..=10u64 {
                last = wal.enqueue(record(i, i));
            }
            wal.sync_to(last);
            let bytes = fs::read(segment_path(dir.path(), 1)).unwrap();
            let scan = scan_segment(&bytes);
            assert_eq!(scan.records.len(), 10, "{mode:?}");
            assert_eq!(scan.torn_bytes, 0, "{mode:?}");
            assert_eq!(wal.records_since_checkpoint(), 10, "{mode:?}");
        }
    }

    #[test]
    fn batch_order_is_sorted_by_version() {
        for mode in both_modes() {
            let dir = TempDir::new("wal-sort");
            let wal = Wal::open(dir.path(), 1, options(128, mode)).unwrap();
            // Enqueue out of commit order within one batch.
            wal.enqueue(record(3, 3));
            wal.enqueue(record(1, 1));
            let seq = wal.enqueue(record(2, 2));
            wal.sync_to(seq);
            let bytes = fs::read(segment_path(dir.path(), 1)).unwrap();
            let versions: Vec<u64> = scan_segment(&bytes)
                .records
                .iter()
                .map(|r| r.version)
                .collect();
            assert_eq!(versions, vec![1, 2, 3], "{mode:?}");
        }
    }

    #[test]
    fn buffered_mode_defers_writes_until_flush() {
        let dir = TempDir::new("wal-buffered");
        let wal = Wal::open(dir.path(), 1, options(0, WriterMode::Thread)).unwrap();
        let seq = wal.enqueue(record(1, 1));
        wal.sync_to(seq); // no-op in buffered mode
        let bytes = fs::read(segment_path(dir.path(), 1)).unwrap();
        assert!(bytes.is_empty(), "buffered mode must not write per op");
        wal.flush().unwrap();
        let bytes = fs::read(segment_path(dir.path(), 1)).unwrap();
        assert_eq!(scan_segment(&bytes).records.len(), 1);
    }

    #[test]
    fn rotate_seals_and_switches_segments() {
        for mode in both_modes() {
            let dir = TempDir::new("wal-rotate");
            let wal = Wal::open(dir.path(), 1, options(8, mode)).unwrap();
            wal.sync_to(wal.enqueue(record(1, 1)));
            let sealed = wal.rotate().unwrap();
            assert_eq!(sealed, 1, "{mode:?}");
            wal.sync_to(wal.enqueue(record(2, 2)));
            let first = fs::read(segment_path(dir.path(), 1)).unwrap();
            let second = fs::read(segment_path(dir.path(), 2)).unwrap();
            assert_eq!(scan_segment(&first).records.len(), 1, "{mode:?}");
            assert_eq!(scan_segment(&second).records.len(), 1, "{mode:?}");
        }
    }

    #[test]
    fn install_checkpoint_writes_image_and_deletes_sealed_segments() {
        let dir = TempDir::new("wal-ckpt");
        let wal = Wal::open(dir.path(), 1, options(8, WriterMode::Thread)).unwrap();
        wal.sync_to(wal.enqueue(record(1, 1)));
        let sealed = wal.rotate().unwrap();
        wal.install_checkpoint(1, &[(1, 10)], sealed).unwrap();
        assert!(!segment_path(dir.path(), 1).exists(), "sealed deleted");
        assert!(dir.path().join(CHECKPOINT_FILE).exists());
        assert!(!dir.path().join(CHECKPOINT_TMP).exists());
        assert_eq!(wal.records_since_checkpoint(), 0);
    }

    #[test]
    fn group_commit_shares_flushes_across_threads() {
        for mode in both_modes() {
            let dir = TempDir::new("wal-group");
            let wal = Arc::new(Wal::open(dir.path(), 1, options(64, mode)).unwrap());
            let threads: Vec<_> = (0..2u64)
                .map(|t| {
                    let wal = Arc::clone(&wal);
                    std::thread::spawn(move || {
                        for i in 0..50u64 {
                            let seq = wal.enqueue(record(t * 1000 + i + 1, i));
                            wal.sync_to(seq);
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            let bytes = fs::read(segment_path(dir.path(), 1)).unwrap();
            assert_eq!(scan_segment(&bytes).records.len(), 100, "{mode:?}");
        }
    }

    #[test]
    fn writer_thread_batches_within_the_window() {
        let dir = TempDir::new("wal-window");
        // A generous window: records enqueued together land in one batch.
        let wal = Wal::open(
            dir.path(),
            1,
            WalOptions {
                group: 64,
                window: Duration::from_millis(20),
                ..WalOptions::default()
            },
        )
        .unwrap();
        let before = stats::snapshot();
        let mut last = 0;
        for i in 1..=16u64 {
            last = wal.enqueue(record(i, i));
        }
        wal.sync_to(last);
        let delta = stats::snapshot().delta_since(&before);
        assert_eq!(delta.records, 16);
        assert!(delta.writer_batches >= 1, "writer thread flushed");
        assert!(
            delta.writer_batches < 16,
            "the window must coalesce records into batches, got {} batches",
            delta.writer_batches
        );
        let bytes = fs::read(segment_path(dir.path(), 1)).unwrap();
        assert_eq!(scan_segment(&bytes).records.len(), 16);
    }

    #[test]
    fn full_ring_blocks_enqueue_without_dropping() {
        let dir = TempDir::new("wal-ring");
        // Capacity 4, big group: producers outrun the writer and must block.
        let wal = Arc::new(
            Wal::open(
                dir.path(),
                1,
                WalOptions {
                    group: 8,
                    ring_capacity: 4,
                    window: Duration::from_micros(0),
                    ..WalOptions::default()
                },
            )
            .unwrap(),
        );
        let total = 200u64;
        let threads: Vec<_> = (0..2u64)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for i in 0..total / 2 {
                        last = wal.enqueue(record(t * 1000 + i + 1, i));
                    }
                    wal.sync_to(last);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let bytes = fs::read(segment_path(dir.path(), 1)).unwrap();
        assert_eq!(
            scan_segment(&bytes).records.len() as u64,
            total,
            "backpressure must never drop records"
        );
    }

    #[test]
    fn poisoned_writer_errors_every_parked_waiter_instead_of_hanging() {
        let dir = TempDir::new("wal-poison");
        let wal = Arc::new(
            Wal::open(
                dir.path(),
                1,
                WalOptions {
                    group: 64,
                    window: Duration::from_millis(5),
                    ..WalOptions::default()
                },
            )
            .unwrap(),
        );
        wal.shared().fail_next_flush.store(true, Ordering::Relaxed);
        let waiters: Vec<_> = (0..3u64)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    let seq = wal.enqueue(record(t + 1, t));
                    wal.sync_to(seq); // must panic, not hang
                })
            })
            .collect();
        for w in waiters {
            let outcome = w.join();
            assert!(outcome.is_err(), "a parked waiter must surface the error");
        }
        // Later operations fail fast rather than hanging, too.
        assert!(wal.flush().is_err(), "flush reports the poisoned state");
        let enqueue_attempt =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| wal.enqueue(record(99, 99))));
        assert!(enqueue_attempt.is_err(), "enqueue panics once poisoned");
    }

    #[test]
    fn drop_drains_the_ring_and_joins_the_writer() {
        let dir = TempDir::new("wal-shutdown");
        {
            let wal = Wal::open(
                dir.path(),
                1,
                WalOptions {
                    group: 1024,
                    window: Duration::from_millis(200),
                    ..WalOptions::default()
                },
            )
            .unwrap();
            // Enqueue without syncing: the long window means these are most
            // likely still in the ring when the Wal drops.
            for i in 1..=32u64 {
                wal.enqueue(record(i, i));
            }
        }
        let bytes = fs::read(segment_path(dir.path(), 1)).unwrap();
        assert_eq!(
            scan_segment(&bytes).records.len(),
            32,
            "drop must flush the ring before joining the writer"
        );
    }

    #[test]
    fn segment_names_roundtrip() {
        assert_eq!(parse_segment_name("segment-00000042.wal"), Some(42));
        assert_eq!(parse_segment_name("segment-x.wal"), None);
        assert_eq!(parse_segment_name("checkpoint.ck"), None);
        let path = segment_path(Path::new("/tmp/x"), 7);
        assert_eq!(
            parse_segment_name(path.file_name().unwrap().to_str().unwrap()),
            Some(7)
        );
    }
}
