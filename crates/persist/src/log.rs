//! The write-ahead log: segment files driven by a group-commit writer.
//!
//! One [`Wal`] owns one directory. Redo records are *enqueued* by commit
//! hooks (cheap: a buffer push under a mutex) and made durable by
//! [`Wal::sync_to`], which implements leader-based **group commit**: the
//! first waiter becomes the flusher, drains up to `group` pending records
//! into one `write` + one `fsync`, and wakes every waiter whose records the
//! batch covered. Concurrent mutators therefore share fsyncs instead of
//! paying one each — the classic trick of `brianshih1/little-key-value-db`'s
//! redo log and of every production WAL.
//!
//! ## Files
//!
//! * `segment-NNNNNNNN.wal` — numbered log segments of record frames
//!   (see [`crate::record`]). Appends go to the highest segment; a
//!   checkpoint *seals* it (flush + switch to the next index) so the sealed
//!   prefix can be deleted once the checkpoint image is durable.
//! * `checkpoint.ck` — one checksummed frame holding the snapshot version
//!   and the full entry set. Written as `checkpoint.tmp` + fsync + atomic
//!   rename, so a crash mid-checkpoint leaves the previous image intact.
//!
//! ## Ordering
//!
//! Records carry their STM commit version. Within one flush batch the
//! writer sorts by version, so the file order tracks commit order; across
//! batches a preempted committer can still enqueue late. Recovery therefore
//! never trusts file order alone: it sorts the surviving records by version
//! before replay (see [`crate::recovery`]), which makes the log's contract
//! independent of scheduling.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

use sf_tree::{Key, Value};

use crate::record::{write_frame, WalRecord};
use crate::stats;

/// Name of the durable checkpoint image inside a log directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.ck";
/// Scratch name the checkpoint is written under before the atomic rename.
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// Tuning of a [`Wal`] (and of the [`crate::DurableMap`] that owns it).
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Maximum records one group-commit batch drains into a single
    /// `write` + `fsync` (the `SF_WAL_GROUP` knob). `0` selects **buffered**
    /// mode: mutations return without waiting for durability and the log is
    /// only written/synced by checkpoints, [`Wal::flush`], and drop — fast,
    /// but a crash loses the buffered tail.
    pub group: usize,
    /// Auto-checkpoint threshold in records (`SF_WAL_CKPT`): a mutation that
    /// observes at least this many records logged since the last checkpoint
    /// triggers one. `0` disables automatic checkpoints.
    pub auto_checkpoint: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            group: 128,
            auto_checkpoint: 0,
        }
    }
}

/// Records waiting to be flushed, with their assigned sequence numbers.
struct PendingState {
    /// FIFO of enqueued-but-not-yet-written records.
    pending: Vec<WalRecord>,
    /// Sequence number of the last enqueued record (first record is 1).
    enqueued_seq: u64,
    /// Sequence number through which records are durably on disk.
    durable_seq: u64,
    /// A leader is currently writing a batch.
    flushing: bool,
}

/// The current segment file.
struct SegmentState {
    file: File,
    index: u64,
}

/// A commit-ordered write-ahead log over one directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    group: usize,
    state: Mutex<PendingState>,
    flushed: Condvar,
    segment: Mutex<SegmentState>,
    records_since_checkpoint: AtomicU64,
}

impl std::fmt::Debug for PendingState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingState")
            .field("pending", &self.pending.len())
            .field("enqueued_seq", &self.enqueued_seq)
            .field("durable_seq", &self.durable_seq)
            .field("flushing", &self.flushing)
            .finish()
    }
}

impl std::fmt::Debug for SegmentState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentState")
            .field("index", &self.index)
            .finish()
    }
}

/// Path of segment `index` inside `dir`.
pub fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("segment-{index:08}.wal"))
}

/// Parse a file name of the `segment-NNNNNNNN.wal` form into its index.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("segment-")?
        .strip_suffix(".wal")?
        .parse()
        .ok()
}

/// Best-effort fsync of a directory (so renames and creations inside it are
/// durable). Ignored on platforms where directories cannot be opened.
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

impl Wal {
    /// Open (creating if necessary) the log directory and start appending to
    /// a fresh segment with index `start_segment` (which must be above every
    /// existing segment — recovery hands the caller `last_segment + 1`).
    pub fn open(dir: impl Into<PathBuf>, start_segment: u64, group: usize) -> io::Result<Wal> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&dir, start_segment))?;
        sync_dir(&dir);
        Ok(Wal {
            dir,
            group,
            state: Mutex::new(PendingState {
                pending: Vec::new(),
                enqueued_seq: 0,
                durable_seq: 0,
                flushing: false,
            }),
            flushed: Condvar::new(),
            segment: Mutex::new(SegmentState {
                file,
                index: start_segment,
            }),
            records_since_checkpoint: AtomicU64::new(0),
        })
    }

    /// The directory this log writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records enqueued since the last completed checkpoint (the
    /// auto-checkpoint trigger reads this).
    pub fn records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint.load(Ordering::Relaxed)
    }

    /// Enqueue one record and return its sequence number (pass it to
    /// [`Wal::sync_to`] to wait for durability). Called from commit hooks:
    /// the record is buffered in memory only.
    pub fn enqueue(&self, record: WalRecord) -> u64 {
        let mut state = self.lock_state();
        state.pending.push(record);
        state.enqueued_seq += 1;
        self.records_since_checkpoint
            .fetch_add(1, Ordering::Relaxed);
        state.enqueued_seq
    }

    /// Block until every record with a sequence number `<= seq` is durably
    /// on disk, flushing batches as the leader when no other thread is. In
    /// buffered mode (`group == 0`) this returns immediately (records are
    /// written by checkpoints, [`Wal::flush`], and drop).
    ///
    /// # Panics
    /// Panics when the underlying file write or sync fails: the caller was
    /// promised durability and the log cannot provide it.
    pub fn sync_to(&self, seq: u64) {
        if self.group == 0 {
            return;
        }
        let mut state = self.lock_state();
        loop {
            if state.durable_seq >= seq {
                return;
            }
            if state.flushing {
                state = self
                    .flushed
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            state = self.flush_batch(state);
        }
    }

    /// Write and sync everything currently pending (used by checkpoints,
    /// shutdown, and buffered mode's explicit durability points).
    pub fn flush(&self) -> io::Result<()> {
        let mut state = self.lock_state();
        while state.durable_seq < state.enqueued_seq {
            if state.flushing {
                state = self
                    .flushed
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            state = self.flush_batch(state);
        }
        Ok(())
    }

    /// Take the leader role, write one batch (up to `group` records, or all
    /// pending when unbounded) with one `write` + one `fsync`, and wake
    /// waiters. Consumes and returns the state lock.
    fn flush_batch<'a>(
        &'a self,
        mut state: std::sync::MutexGuard<'a, PendingState>,
    ) -> std::sync::MutexGuard<'a, PendingState> {
        debug_assert!(!state.flushing);
        let take = if self.group == 0 {
            state.pending.len()
        } else {
            state.pending.len().min(self.group)
        };
        if take == 0 {
            return state;
        }
        state.flushing = true;
        let mut batch: Vec<WalRecord> = state.pending.drain(..take).collect();
        drop(state);

        // If the write or sync below panics (disk full, EIO), the leader
        // role must not die with this thread: clear `flushing` and wake the
        // waiters on unwind, so each surfaces its own durability panic
        // instead of blocking on the condvar forever. Disarmed on the
        // success path, which clears the flag under its own lock hold.
        struct LeaderGuard<'a> {
            wal: &'a Wal,
            armed: bool,
        }
        impl Drop for LeaderGuard<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.wal.lock_state().flushing = false;
                    self.wal.flushed.notify_all();
                }
            }
        }
        let mut leader = LeaderGuard {
            wal: self,
            armed: true,
        };

        // Best-effort: make the file order track commit order within the
        // batch (recovery sorts globally anyway, see the module docs).
        batch.sort_by_key(|r| r.version);
        let mut buf = Vec::with_capacity(take * 64);
        for record in &batch {
            record.encode_into(&mut buf);
        }
        {
            let mut segment = self.lock_segment();
            segment
                .file
                .write_all(&buf)
                .expect("WAL append failed: cannot honor the durability promise");
            segment
                .file
                .sync_data()
                .expect("WAL sync failed: cannot honor the durability promise");
        }
        stats::note_batch(take as u64, buf.len() as u64);

        let mut state = self.lock_state();
        state.durable_seq += take as u64;
        state.flushing = false;
        leader.armed = false;
        self.flushed.notify_all();
        state
    }

    /// Seal the current segment: flush everything pending into it, then
    /// switch appends to a fresh segment. Returns the sealed segment's
    /// index; every record enqueued before this call is in a segment
    /// `<= sealed`, so a snapshot taken *after* the rotation covers the
    /// sealed prefix entirely.
    pub fn rotate(&self) -> io::Result<u64> {
        // Drain the pending buffer into the old segment first.
        self.flush()?;
        let mut segment = self.lock_segment();
        // Records enqueued after flush() returned but before we took the
        // segment lock were flushed by... nobody — they are still pending
        // and will land in the *new* segment, which is exactly what the
        // checkpoint protocol needs (their versions may exceed the snapshot
        // version). But the sealed file itself must be fully durable:
        segment.file.sync_data()?;
        let sealed = segment.index;
        let next = sealed + 1;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, next))?;
        sync_dir(&self.dir);
        *segment = SegmentState { file, index: next };
        Ok(sealed)
    }

    /// Durably install a checkpoint image: `(version, entries)` is written
    /// to `checkpoint.tmp`, synced, atomically renamed over
    /// [`CHECKPOINT_FILE`], and every segment with index `<= sealed_through`
    /// is deleted (their records all have versions `<= version` and are
    /// covered by the image).
    pub fn install_checkpoint(
        &self,
        version: u64,
        entries: &[(Key, Value)],
        sealed_through: u64,
    ) -> io::Result<()> {
        let mut payload = Vec::with_capacity(16 + entries.len() * 16);
        payload.extend_from_slice(&version.to_le_bytes());
        payload.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for &(key, value) in entries {
            payload.extend_from_slice(&key.to_le_bytes());
            payload.extend_from_slice(&value.to_le_bytes());
        }
        let mut framed = Vec::with_capacity(payload.len() + 12);
        write_frame(&mut framed, &payload);

        let tmp = self.dir.join(CHECKPOINT_TMP);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&framed)?;
            file.sync_data()?;
        }
        fs::rename(&tmp, self.dir.join(CHECKPOINT_FILE))?;
        sync_dir(&self.dir);

        // The image is durable; the sealed prefix of the log is now garbage.
        for index in (1..=sealed_through).rev() {
            let path = segment_path(&self.dir, index);
            if path.exists() {
                fs::remove_file(path)?;
            } else {
                break;
            }
        }
        self.records_since_checkpoint.store(0, Ordering::Relaxed);
        stats::note_checkpoint();
        Ok(())
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, PendingState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_segment(&self) -> std::sync::MutexGuard<'_, SegmentState> {
        self.segment.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Clean shutdown: persist whatever is still buffered (crash tests
        // bypass this by never dropping the map).
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{scan_segment, WalOp};
    use crate::tempdir::TempDir;

    fn record(version: u64, key: Key) -> WalRecord {
        WalRecord {
            version,
            op: WalOp::Insert {
                key,
                value: key * 10,
            },
        }
    }

    #[test]
    fn enqueue_sync_roundtrip_lands_records_in_the_segment() {
        let dir = TempDir::new("wal-roundtrip");
        let wal = Wal::open(dir.path(), 1, 4).unwrap();
        let mut last = 0;
        for i in 1..=10u64 {
            last = wal.enqueue(record(i, i));
        }
        wal.sync_to(last);
        let bytes = fs::read(segment_path(dir.path(), 1)).unwrap();
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records.len(), 10);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(wal.records_since_checkpoint(), 10);
    }

    #[test]
    fn batch_order_is_sorted_by_version() {
        let dir = TempDir::new("wal-sort");
        let wal = Wal::open(dir.path(), 1, 128).unwrap();
        // Enqueue out of commit order within one batch.
        wal.enqueue(record(3, 3));
        wal.enqueue(record(1, 1));
        let seq = wal.enqueue(record(2, 2));
        wal.sync_to(seq);
        let bytes = fs::read(segment_path(dir.path(), 1)).unwrap();
        let versions: Vec<u64> = scan_segment(&bytes)
            .records
            .iter()
            .map(|r| r.version)
            .collect();
        assert_eq!(versions, vec![1, 2, 3]);
    }

    #[test]
    fn buffered_mode_defers_writes_until_flush() {
        let dir = TempDir::new("wal-buffered");
        let wal = Wal::open(dir.path(), 1, 0).unwrap();
        let seq = wal.enqueue(record(1, 1));
        wal.sync_to(seq); // no-op in buffered mode
        let bytes = fs::read(segment_path(dir.path(), 1)).unwrap();
        assert!(bytes.is_empty(), "buffered mode must not write per op");
        wal.flush().unwrap();
        let bytes = fs::read(segment_path(dir.path(), 1)).unwrap();
        assert_eq!(scan_segment(&bytes).records.len(), 1);
    }

    #[test]
    fn rotate_seals_and_switches_segments() {
        let dir = TempDir::new("wal-rotate");
        let wal = Wal::open(dir.path(), 1, 8).unwrap();
        wal.sync_to(wal.enqueue(record(1, 1)));
        let sealed = wal.rotate().unwrap();
        assert_eq!(sealed, 1);
        wal.sync_to(wal.enqueue(record(2, 2)));
        let first = fs::read(segment_path(dir.path(), 1)).unwrap();
        let second = fs::read(segment_path(dir.path(), 2)).unwrap();
        assert_eq!(scan_segment(&first).records.len(), 1);
        assert_eq!(scan_segment(&second).records.len(), 1);
    }

    #[test]
    fn install_checkpoint_writes_image_and_deletes_sealed_segments() {
        let dir = TempDir::new("wal-ckpt");
        let wal = Wal::open(dir.path(), 1, 8).unwrap();
        wal.sync_to(wal.enqueue(record(1, 1)));
        let sealed = wal.rotate().unwrap();
        wal.install_checkpoint(1, &[(1, 10)], sealed).unwrap();
        assert!(!segment_path(dir.path(), 1).exists(), "sealed deleted");
        assert!(dir.path().join(CHECKPOINT_FILE).exists());
        assert!(!dir.path().join(CHECKPOINT_TMP).exists());
        assert_eq!(wal.records_since_checkpoint(), 0);
    }

    #[test]
    fn group_commit_shares_flushes_across_threads() {
        use std::sync::Arc;
        let dir = TempDir::new("wal-group");
        let wal = Arc::new(Wal::open(dir.path(), 1, 64).unwrap());
        let threads: Vec<_> = (0..2u64)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let seq = wal.enqueue(record(t * 1000 + i + 1, i));
                        wal.sync_to(seq);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let bytes = fs::read(segment_path(dir.path(), 1)).unwrap();
        assert_eq!(scan_segment(&bytes).records.len(), 100);
    }

    #[test]
    fn segment_names_roundtrip() {
        assert_eq!(parse_segment_name("segment-00000042.wal"), Some(42));
        assert_eq!(parse_segment_name("segment-x.wal"), None);
        assert_eq!(parse_segment_name("checkpoint.ck"), None);
        let path = segment_path(Path::new("/tmp/x"), 7);
        assert_eq!(
            parse_segment_name(path.file_name().unwrap().to_str().unwrap()),
            Some(7)
        );
    }
}
