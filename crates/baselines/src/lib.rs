//! # sf-baselines — the trees the paper compares against
//!
//! The evaluation of *A Speculation-Friendly Binary Search Tree* (PPoPP 2012)
//! compares the speculation-friendly tree with three other structures, all of
//! which are rebuilt here on top of the same [`sf_stm`] substrate:
//!
//! * [`RedBlackTree`] — the transaction-encapsulated red-black tree in the
//!   style of the Oracle Labs library shipped with STAMP and synchrobench:
//!   lookup, abstraction change and rebalancing in one transaction.
//! * [`AvlTree`] — the transaction-encapsulated AVL tree from STAMP, with
//!   in-transaction height maintenance and rotations.
//! * [`NoRestructureTree`] — the NRtree of §5.2: logical deletion only, no
//!   rotation, no physical removal.
//! * [`SeqMap`] — a sequential reference map used as the single-threaded
//!   baseline for the vacation speedup (Figure 6) and as a test oracle.
//! * [`ZipTree`] — a rotation-free randomized zip tree (Tarjan–Levy–Timmel,
//!   WADS 2019), the rebalance-free control for the hot-key restructuring
//!   experiments.
//!
//! All of them implement [`sf_tree::TxMap`] / [`sf_tree::TxMapInTx`], so the
//! micro-benchmark harness and the vacation application drive them through
//! the same interface as the speculation-friendly tree.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod avl;
mod nrtree;
mod rbtree;
mod seq;
mod zip;

pub use avl::AvlTree;
pub use nrtree::NoRestructureTree;
pub use rbtree::RedBlackTree;
pub use seq::SeqMap;
pub use zip::ZipTree;
