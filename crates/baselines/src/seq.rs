//! Sequential reference map.
//!
//! Used as (a) the "bare sequential code without synchronization" baseline of
//! the vacation experiment (Figure 6 reports speedups over it) and (b) a test
//! oracle for the transactional trees. It is a plain `BTreeMap` behind a
//! mutex: on a single thread the uncontended lock adds only nanoseconds, so
//! it is a faithful stand-in for unsynchronized sequential code while still
//! satisfying the `TxMap` interface.

use std::collections::BTreeMap;
use std::ops::{ControlFlow, RangeInclusive};

use parking_lot::Mutex;
use sf_stm::{ThreadCtx, Transaction, TxResult};
use sf_tree::map::{ScanOrder, TxMap, TxMapInTx, TxOrderedMapInTx};
use sf_tree::{Key, Value};

/// Sequential map baseline (single-threaded use).
#[derive(Debug, Default)]
pub struct SeqMap {
    inner: Mutex<BTreeMap<Key, Value>>,
}

impl SeqMap {
    /// Create an empty map.
    pub fn new() -> Self {
        SeqMap::default()
    }

    /// Direct (non-transactional) lookup.
    pub fn get_direct(&self, key: Key) -> Option<Value> {
        self.inner.lock().get(&key).copied()
    }

    /// Direct (non-transactional) insert. Matches the tree semantics: the
    /// value is only stored when the key was absent.
    pub fn insert_direct(&self, key: Key, value: Value) -> bool {
        match self.inner.lock().entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Direct (non-transactional) delete.
    pub fn delete_direct(&self, key: Key) -> bool {
        self.inner.lock().remove(&key).is_some()
    }

    /// Compare-and-delete under one lock acquisition.
    pub fn delete_if_direct(&self, key: Key, expected: Value) -> bool {
        let mut map = self.inner.lock();
        if map.get(&key) == Some(&expected) {
            map.remove(&key);
            true
        } else {
            false
        }
    }

    /// Snapshot of the contents.
    pub fn entries(&self) -> Vec<(Key, Value)> {
        self.inner.lock().iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Range scan under one lock acquisition.
    pub fn range_direct(&self, range: RangeInclusive<Key>) -> Vec<(Key, Value)> {
        self.inner
            .lock()
            .range(range)
            .map(|(&k, &v)| (k, v))
            .collect()
    }
}

impl TxMapInTx for SeqMap {
    fn tx_get<'env>(&'env self, _tx: &mut Transaction<'env>, key: Key) -> TxResult<Option<Value>> {
        Ok(self.get_direct(key))
    }

    fn tx_insert<'env>(
        &'env self,
        _tx: &mut Transaction<'env>,
        key: Key,
        value: Value,
    ) -> TxResult<bool> {
        Ok(self.insert_direct(key, value))
    }

    fn tx_delete<'env>(&'env self, _tx: &mut Transaction<'env>, key: Key) -> TxResult<bool> {
        Ok(self.delete_direct(key))
    }

    fn tx_delete_if<'env>(
        &'env self,
        _tx: &mut Transaction<'env>,
        key: Key,
        expected: Value,
    ) -> TxResult<bool> {
        // The default (get then delete) would take the lock twice and lose
        // atomicity; do the compare-and-delete under one acquisition.
        Ok(self.delete_if_direct(key, expected))
    }
}

impl TxOrderedMapInTx for SeqMap {
    fn tx_range_visit<'env>(
        &'env self,
        _tx: &mut Transaction<'env>,
        range: RangeInclusive<Key>,
        order: ScanOrder,
        visit: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> TxResult<()> {
        // Snapshot under the lock, release it, then run the callback:
        // `visit` may re-enter this map (a fold composing point operations),
        // and the inner mutex is not reentrant.
        let entries = self.range_direct(range);
        match order {
            ScanOrder::Ascending => {
                for (k, v) in entries {
                    if visit(k, v).is_break() {
                        break;
                    }
                }
            }
            ScanOrder::Descending => {
                for (k, v) in entries.into_iter().rev() {
                    if visit(k, v).is_break() {
                        break;
                    }
                }
            }
        }
        Ok(())
    }
}

impl TxMap for SeqMap {
    type Handle = ThreadCtx;

    fn register(&self, ctx: ThreadCtx) -> ThreadCtx {
        ctx
    }

    fn contains(&self, _ctx: &mut ThreadCtx, key: Key) -> bool {
        self.get_direct(key).is_some()
    }

    fn get(&self, _ctx: &mut ThreadCtx, key: Key) -> Option<Value> {
        self.get_direct(key)
    }

    fn insert(&self, _ctx: &mut ThreadCtx, key: Key, value: Value) -> bool {
        self.insert_direct(key, value)
    }

    fn delete(&self, _ctx: &mut ThreadCtx, key: Key) -> bool {
        self.delete_direct(key)
    }

    fn delete_if(&self, _ctx: &mut ThreadCtx, key: Key, expected: Value) -> bool {
        self.delete_if_direct(key, expected)
    }

    fn move_entry(&self, _ctx: &mut ThreadCtx, from: Key, to: Key) -> bool {
        let mut map = self.inner.lock();
        if from == to {
            return map.contains_key(&from);
        }
        if !map.contains_key(&from) || map.contains_key(&to) {
            return false;
        }
        let value = map.remove(&from).expect("checked above");
        map.insert(to, value);
        true
    }

    fn range_collect(&self, _ctx: &mut ThreadCtx, range: RangeInclusive<Key>) -> Vec<(Key, Value)> {
        self.range_direct(range)
    }

    fn len(&self, _ctx: &mut ThreadCtx) -> usize {
        self.inner.lock().len()
    }

    fn len_quiescent(&self) -> usize {
        self.inner.lock().len()
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_api_roundtrip() {
        let m = SeqMap::new();
        assert!(m.insert_direct(1, 10));
        assert!(!m.insert_direct(1, 11));
        assert_eq!(m.get_direct(1), Some(10));
        assert!(m.delete_direct(1));
        assert!(!m.delete_direct(1));
        assert_eq!(m.len_quiescent(), 0);
    }

    #[test]
    fn range_visit_callback_may_reenter_the_map() {
        // Regression test: the visit callback runs after the inner lock is
        // released, so a fold may compose with point reads of the same map.
        let stm = sf_stm::Stm::default_config();
        let mut ctx = stm.register();
        let m = SeqMap::new();
        m.insert_direct(1, 10);
        m.insert_direct(2, 20);
        let sum = ctx.atomically(|tx| {
            m.tx_range_fold(tx, 0..=10, 0u64, |acc, k, _| {
                acc + m.get_direct(k).unwrap_or(0)
            })
        });
        assert_eq!(sum, 30);
    }

    #[test]
    fn move_semantics_match_trees() {
        let stm = sf_stm::Stm::default_config();
        let mut ctx = stm.register();
        let m = SeqMap::new();
        m.insert_direct(1, 10);
        m.insert_direct(2, 20);
        assert!(TxMap::move_entry(&m, &mut ctx, 1, 5));
        assert!(!TxMap::move_entry(&m, &mut ctx, 2, 5));
        assert!(TxMap::move_entry(&m, &mut ctx, 5, 5));
        assert_eq!(m.entries(), vec![(2, 20), (5, 10)]);
    }
}
