//! Transaction-encapsulated red-black tree.
//!
//! A faithful stand-in for the red-black tree library developed by Oracle
//! Labs (formerly Sun) that STAMP and synchrobench ship and that the paper
//! uses as its main baseline: a classic CLRS-style red-black tree with parent
//! pointers whose insert and delete perform the lookup, the linking, and the
//! full recolor/rotation fix-up inside a single transaction. There is no
//! sentinel node (the Oracle implementation removed it to avoid
//! false conflicts); ⊥ children are represented by [`NodeId::NIL`] and the
//! fix-up code tracks the parent of an absent child explicitly.

use std::ops::{ControlFlow, RangeInclusive};
use std::sync::Arc;

use sf_stm::{TCell, ThreadCtx, Transaction, TxKind, TxResult};
use sf_tree::map::{ScanOrder, TxMap, TxMapInTx, TxMapVersioned, TxOrderedMapInTx};
use sf_tree::{Key, NodeId, TxArena, Value};

const RED: bool = true;
const BLACK: bool = false;

/// Red-black tree node.
#[derive(Debug)]
pub struct RbNode {
    key: TCell<Key>,
    value: TCell<Value>,
    left: TCell<NodeId>,
    right: TCell<NodeId>,
    parent: TCell<NodeId>,
    red: TCell<bool>,
}

impl Default for RbNode {
    fn default() -> Self {
        RbNode {
            key: TCell::new(0),
            value: TCell::new(0),
            left: TCell::new(NodeId::NIL),
            right: TCell::new(NodeId::NIL),
            parent: TCell::new(NodeId::NIL),
            red: TCell::new(BLACK),
        }
    }
}

/// Transaction-encapsulated red-black tree (in-transaction rebalancing).
#[derive(Debug)]
pub struct RedBlackTree {
    arena: Arc<TxArena<RbNode>>,
    root: TCell<NodeId>,
    rotations: std::sync::atomic::AtomicU64,
}

impl RedBlackTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        RedBlackTree {
            arena: Arc::new(TxArena::new()),
            root: TCell::new(NodeId::NIL),
            rotations: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Create an empty tree with a bounded arena.
    pub fn with_capacity(capacity: usize) -> Self {
        RedBlackTree {
            arena: Arc::new(TxArena::with_capacity(capacity)),
            root: TCell::new(NodeId::NIL),
            rotations: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of rotation attempts performed while rebalancing (including
    /// rotations of attempts that later aborted). Used for the rotation-count
    /// comparison of §5.5.
    pub fn rotation_attempts(&self) -> u64 {
        // sf-lint: allow(relaxed-atomic, rotation telemetry; read once for the end-of-run report)
        self.rotations.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn node(&self, id: NodeId) -> &RbNode {
        self.arena.get(id)
    }

    fn is_red<'env>(&'env self, tx: &mut Transaction<'env>, id: NodeId) -> TxResult<bool> {
        if id.is_nil() {
            Ok(false)
        } else {
            tx.read(&self.node(id).red)
        }
    }

    fn set_black<'env>(&'env self, tx: &mut Transaction<'env>, id: NodeId) -> TxResult<()> {
        if !id.is_nil() {
            tx.write(&self.node(id).red, BLACK)?;
        }
        Ok(())
    }

    /// Re-link `v` in place of `u` under `u`'s parent.
    fn transplant<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        u: NodeId,
        v: NodeId,
    ) -> TxResult<()> {
        let up = tx.read(&self.node(u).parent)?;
        if up.is_nil() {
            tx.write(&self.root, v)?;
        } else if u == tx.read(&self.node(up).left)? {
            tx.write(&self.node(up).left, v)?;
        } else {
            tx.write(&self.node(up).right, v)?;
        }
        if !v.is_nil() {
            tx.write(&self.node(v).parent, up)?;
        }
        Ok(())
    }

    fn rotate_left<'env>(&'env self, tx: &mut Transaction<'env>, x: NodeId) -> TxResult<()> {
        self.rotations
            // sf-lint: allow(relaxed-atomic, rotation telemetry counter; no reader synchronizes on it)
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let xn = self.node(x);
        let y = tx.read(&xn.right)?;
        let yn = self.node(y);
        let beta = tx.read(&yn.left)?;
        tx.write(&xn.right, beta)?;
        if !beta.is_nil() {
            tx.write(&self.node(beta).parent, x)?;
        }
        let xp = tx.read(&xn.parent)?;
        tx.write(&yn.parent, xp)?;
        if xp.is_nil() {
            tx.write(&self.root, y)?;
        } else if x == tx.read(&self.node(xp).left)? {
            tx.write(&self.node(xp).left, y)?;
        } else {
            tx.write(&self.node(xp).right, y)?;
        }
        tx.write(&yn.left, x)?;
        tx.write(&xn.parent, y)?;
        Ok(())
    }

    fn rotate_right<'env>(&'env self, tx: &mut Transaction<'env>, x: NodeId) -> TxResult<()> {
        self.rotations
            // sf-lint: allow(relaxed-atomic, rotation telemetry counter; no reader synchronizes on it)
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let xn = self.node(x);
        let y = tx.read(&xn.left)?;
        let yn = self.node(y);
        let beta = tx.read(&yn.right)?;
        tx.write(&xn.left, beta)?;
        if !beta.is_nil() {
            tx.write(&self.node(beta).parent, x)?;
        }
        let xp = tx.read(&xn.parent)?;
        tx.write(&yn.parent, xp)?;
        if xp.is_nil() {
            tx.write(&self.root, y)?;
        } else if x == tx.read(&self.node(xp).right)? {
            tx.write(&self.node(xp).right, y)?;
        } else {
            tx.write(&self.node(xp).left, y)?;
        }
        tx.write(&yn.right, x)?;
        tx.write(&xn.parent, y)?;
        Ok(())
    }

    fn insert_fixup<'env>(&'env self, tx: &mut Transaction<'env>, mut z: NodeId) -> TxResult<()> {
        loop {
            let zp = tx.read(&self.node(z).parent)?;
            if zp.is_nil() || !self.is_red(tx, zp)? {
                break;
            }
            let zpp = tx.read(&self.node(zp).parent)?;
            debug_assert!(!zpp.is_nil(), "red parent implies a grandparent");
            if zp == tx.read(&self.node(zpp).left)? {
                let uncle = tx.read(&self.node(zpp).right)?;
                if self.is_red(tx, uncle)? {
                    self.set_black(tx, zp)?;
                    self.set_black(tx, uncle)?;
                    tx.write(&self.node(zpp).red, RED)?;
                    z = zpp;
                } else {
                    let mut zp = zp;
                    let mut zpp = zpp;
                    if z == tx.read(&self.node(zp).right)? {
                        z = zp;
                        self.rotate_left(tx, z)?;
                        zp = tx.read(&self.node(z).parent)?;
                        zpp = tx.read(&self.node(zp).parent)?;
                    }
                    self.set_black(tx, zp)?;
                    tx.write(&self.node(zpp).red, RED)?;
                    self.rotate_right(tx, zpp)?;
                }
            } else {
                let uncle = tx.read(&self.node(zpp).left)?;
                if self.is_red(tx, uncle)? {
                    self.set_black(tx, zp)?;
                    self.set_black(tx, uncle)?;
                    tx.write(&self.node(zpp).red, RED)?;
                    z = zpp;
                } else {
                    let mut zp = zp;
                    let mut zpp = zpp;
                    if z == tx.read(&self.node(zp).left)? {
                        z = zp;
                        self.rotate_right(tx, z)?;
                        zp = tx.read(&self.node(z).parent)?;
                        zpp = tx.read(&self.node(zp).parent)?;
                    }
                    self.set_black(tx, zp)?;
                    tx.write(&self.node(zpp).red, RED)?;
                    self.rotate_left(tx, zpp)?;
                }
            }
        }
        let root = tx.read(&self.root)?;
        self.set_black(tx, root)?;
        Ok(())
    }

    fn minimum<'env>(&'env self, tx: &mut Transaction<'env>, mut id: NodeId) -> TxResult<NodeId> {
        loop {
            let left = tx.read(&self.node(id).left)?;
            if left.is_nil() {
                return Ok(id);
            }
            id = left;
        }
    }

    #[allow(clippy::too_many_lines)]
    fn delete_fixup<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        mut x: NodeId,
        mut x_parent: NodeId,
    ) -> TxResult<()> {
        while x != tx.read(&self.root)? && !self.is_red(tx, x)? {
            debug_assert!(!x_parent.is_nil());
            let parent_node = self.node(x_parent);
            if x == tx.read(&parent_node.left)? {
                let mut w = tx.read(&parent_node.right)?;
                if self.is_red(tx, w)? {
                    self.set_black(tx, w)?;
                    tx.write(&parent_node.red, RED)?;
                    self.rotate_left(tx, x_parent)?;
                    w = tx.read(&parent_node.right)?;
                }
                let wl = tx.read(&self.node(w).left)?;
                let wr = tx.read(&self.node(w).right)?;
                if !self.is_red(tx, wl)? && !self.is_red(tx, wr)? {
                    tx.write(&self.node(w).red, RED)?;
                    x = x_parent;
                    x_parent = tx.read(&self.node(x).parent)?;
                } else {
                    if !self.is_red(tx, wr)? {
                        self.set_black(tx, wl)?;
                        tx.write(&self.node(w).red, RED)?;
                        self.rotate_right(tx, w)?;
                        w = tx.read(&parent_node.right)?;
                    }
                    let parent_color = tx.read(&parent_node.red)?;
                    tx.write(&self.node(w).red, parent_color)?;
                    tx.write(&parent_node.red, BLACK)?;
                    let wr = tx.read(&self.node(w).right)?;
                    self.set_black(tx, wr)?;
                    self.rotate_left(tx, x_parent)?;
                    x = tx.read(&self.root)?;
                    x_parent = NodeId::NIL;
                }
            } else {
                let mut w = tx.read(&parent_node.left)?;
                if self.is_red(tx, w)? {
                    self.set_black(tx, w)?;
                    tx.write(&parent_node.red, RED)?;
                    self.rotate_right(tx, x_parent)?;
                    w = tx.read(&parent_node.left)?;
                }
                let wl = tx.read(&self.node(w).left)?;
                let wr = tx.read(&self.node(w).right)?;
                if !self.is_red(tx, wl)? && !self.is_red(tx, wr)? {
                    tx.write(&self.node(w).red, RED)?;
                    x = x_parent;
                    x_parent = tx.read(&self.node(x).parent)?;
                } else {
                    if !self.is_red(tx, wl)? {
                        self.set_black(tx, wr)?;
                        tx.write(&self.node(w).red, RED)?;
                        self.rotate_left(tx, w)?;
                        w = tx.read(&parent_node.left)?;
                    }
                    let parent_color = tx.read(&parent_node.red)?;
                    tx.write(&self.node(w).red, parent_color)?;
                    tx.write(&parent_node.red, BLACK)?;
                    let wl = tx.read(&self.node(w).left)?;
                    self.set_black(tx, wl)?;
                    self.rotate_right(tx, x_parent)?;
                    x = tx.read(&self.root)?;
                    x_parent = NodeId::NIL;
                }
            }
        }
        self.set_black(tx, x)?;
        Ok(())
    }

    /// Find the node carrying `key`, if any.
    fn find_node<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        key: Key,
    ) -> TxResult<Option<NodeId>> {
        let mut curr = tx.read(&self.root)?;
        while !curr.is_nil() {
            let node = self.node(curr);
            let k = tx.read(&node.key)?;
            if key == k {
                return Ok(Some(curr));
            }
            curr = if key < k {
                tx.read(&node.left)?
            } else {
                tx.read(&node.right)?
            };
        }
        Ok(None)
    }

    /// Quiescent in-order key/value dump (test oracle).
    pub fn entries_quiescent(&self) -> Vec<(Key, Value)> {
        fn rec(tree: &RedBlackTree, id: NodeId, out: &mut Vec<(Key, Value)>) {
            if id.is_nil() {
                return;
            }
            let n = tree.node(id);
            rec(tree, n.left.unsync_load(), out);
            out.push((n.key.unsync_load(), n.value.unsync_load()));
            rec(tree, n.right.unsync_load(), out);
        }
        let mut out = Vec::new();
        rec(self, self.root.unsync_load(), &mut out);
        out
    }

    /// Verify the red-black invariants while quiescent:
    /// BST ordering, a black root, no red node with a red child, equal black
    /// height on every root-to-leaf path, and consistent parent pointers.
    pub fn check_invariants(&self) -> Result<(), String> {
        let root = self.root.unsync_load();
        if root.is_nil() {
            return Ok(());
        }
        if self.node(root).red.unsync_load() {
            return Err("root is red".to_string());
        }
        if !self.node(root).parent.unsync_load().is_nil() {
            return Err("root has a parent".to_string());
        }
        self.check_rec(root, None, None).map(|_| ())
    }

    fn check_rec(&self, id: NodeId, low: Option<Key>, high: Option<Key>) -> Result<u32, String> {
        if id.is_nil() {
            return Ok(1); // NIL leaves are black
        }
        let n = self.node(id);
        let k = n.key.unsync_load();
        if low.is_some_and(|l| k <= l) || high.is_some_and(|h| k >= h) {
            return Err(format!("BST violation at key {k}"));
        }
        let left = n.left.unsync_load();
        let right = n.right.unsync_load();
        if n.red.unsync_load() {
            for child in [left, right] {
                if !child.is_nil() && self.node(child).red.unsync_load() {
                    return Err(format!("red node {k} has a red child"));
                }
            }
        }
        for child in [left, right] {
            if !child.is_nil() && self.node(child).parent.unsync_load() != id {
                return Err(format!("broken parent pointer under key {k}"));
            }
        }
        let bl = self.check_rec(left, low, Some(k))?;
        let br = self.check_rec(right, Some(k), high)?;
        if bl != br {
            return Err(format!("black-height mismatch at key {k}: {bl} vs {br}"));
        }
        Ok(bl + u32::from(!n.red.unsync_load()))
    }

    /// Longest root-to-leaf path, counted in nodes.
    pub fn depth_quiescent(&self) -> usize {
        fn rec(tree: &RedBlackTree, id: NodeId) -> usize {
            if id.is_nil() {
                return 0;
            }
            let n = tree.node(id);
            1 + rec(tree, n.left.unsync_load()).max(rec(tree, n.right.unsync_load()))
        }
        rec(self, self.root.unsync_load())
    }
}

impl Default for RedBlackTree {
    fn default() -> Self {
        Self::new()
    }
}

impl TxMapInTx for RedBlackTree {
    fn tx_get<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<Option<Value>> {
        match self.find_node(tx, key)? {
            Some(id) => Ok(Some(tx.read(&self.node(id).value)?)),
            None => Ok(None),
        }
    }

    fn tx_insert<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        key: Key,
        value: Value,
    ) -> TxResult<bool> {
        // Descend to the insertion point.
        let mut parent = NodeId::NIL;
        let mut curr = tx.read(&self.root)?;
        while !curr.is_nil() {
            let node = self.node(curr);
            let k = tx.read(&node.key)?;
            if key == k {
                return Ok(false);
            }
            parent = curr;
            curr = if key < k {
                tx.read(&node.left)?
            } else {
                tx.read(&node.right)?
            };
        }
        let z = self.arena.alloc();
        let zn = self.node(z);
        zn.key.unsync_store(key);
        zn.value.unsync_store(value);
        zn.left.unsync_store(NodeId::NIL);
        zn.right.unsync_store(NodeId::NIL);
        zn.parent.unsync_store(parent);
        zn.red.unsync_store(RED);
        let arena = Arc::clone(&self.arena);
        tx.on_abort(move || arena.recycle(z));
        if parent.is_nil() {
            tx.write(&self.root, z)?;
        } else if key < tx.read(&self.node(parent).key)? {
            tx.write(&self.node(parent).left, z)?;
        } else {
            tx.write(&self.node(parent).right, z)?;
        }
        self.insert_fixup(tx, z)?;
        Ok(true)
    }

    fn tx_delete<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<bool> {
        let z = match self.find_node(tx, key)? {
            Some(id) => id,
            None => return Ok(false),
        };
        let zn = self.node(z);
        let z_left = tx.read(&zn.left)?;
        let z_right = tx.read(&zn.right)?;
        let removed_color;
        let x;
        let x_parent;
        if z_left.is_nil() {
            removed_color = tx.read(&zn.red)?;
            x = z_right;
            x_parent = tx.read(&zn.parent)?;
            self.transplant(tx, z, z_right)?;
        } else if z_right.is_nil() {
            removed_color = tx.read(&zn.red)?;
            x = z_left;
            x_parent = tx.read(&zn.parent)?;
            self.transplant(tx, z, z_left)?;
        } else {
            // Two children: splice out the in-order successor `y`.
            let y = self.minimum(tx, z_right)?;
            let yn = self.node(y);
            removed_color = tx.read(&yn.red)?;
            x = tx.read(&yn.right)?;
            if tx.read(&yn.parent)? == z {
                x_parent = y;
                if !x.is_nil() {
                    tx.write(&self.node(x).parent, y)?;
                }
            } else {
                x_parent = tx.read(&yn.parent)?;
                self.transplant(tx, y, x)?;
                tx.write(&yn.right, z_right)?;
                tx.write(&self.node(z_right).parent, y)?;
            }
            self.transplant(tx, z, y)?;
            tx.write(&yn.left, z_left)?;
            tx.write(&self.node(z_left).parent, y)?;
            let z_color = tx.read(&zn.red)?;
            tx.write(&yn.red, z_color)?;
        }
        if removed_color == BLACK {
            self.delete_fixup(tx, x, x_parent)?;
        }
        Ok(true)
    }
}

impl sf_tree::scan::ScanNode for RbNode {
    fn scan_key<'env>(&'env self, tx: &mut Transaction<'env>) -> TxResult<Key> {
        tx.read(&self.key)
    }

    fn scan_entry<'env>(&'env self, tx: &mut Transaction<'env>) -> TxResult<Option<(Key, Value)>> {
        // No tombstones: every reachable node is live.
        Ok(Some((tx.read(&self.key)?, tx.read(&self.value)?)))
    }

    fn left_child(&self) -> &TCell<NodeId> {
        &self.left
    }

    fn right_child(&self) -> &TCell<NodeId> {
        &self.right
    }
}

impl TxOrderedMapInTx for RedBlackTree {
    /// In-order range walk inside the caller's transaction (the generic
    /// walker of [`sf_tree::scan`]). The read set covers every visited
    /// node, so a committed scan is an atomic snapshot of the range — and,
    /// true to this "transaction-encapsulated" baseline, its cost grows
    /// with the range.
    fn tx_range_visit<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        range: RangeInclusive<Key>,
        order: ScanOrder,
        visit: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> TxResult<()> {
        let root = tx.read(&self.root)?;
        sf_tree::scan::bst_range_visit(|id| self.node(id), root, tx, range, order, visit)
    }
}

impl TxMap for RedBlackTree {
    type Handle = ThreadCtx;

    fn register(&self, ctx: ThreadCtx) -> ThreadCtx {
        ctx
    }

    fn contains(&self, ctx: &mut ThreadCtx, key: Key) -> bool {
        ctx.atomically(|tx| self.tx_contains(tx, key))
    }

    fn get(&self, ctx: &mut ThreadCtx, key: Key) -> Option<Value> {
        ctx.atomically(|tx| self.tx_get(tx, key))
    }

    fn insert(&self, ctx: &mut ThreadCtx, key: Key, value: Value) -> bool {
        ctx.atomically(|tx| self.tx_insert(tx, key, value))
    }

    fn delete(&self, ctx: &mut ThreadCtx, key: Key) -> bool {
        ctx.atomically(|tx| self.tx_delete(tx, key))
    }

    fn delete_if(&self, ctx: &mut ThreadCtx, key: Key, expected: Value) -> bool {
        ctx.atomically(|tx| self.tx_delete_if(tx, key, expected))
    }

    fn move_entry(&self, ctx: &mut ThreadCtx, from: Key, to: Key) -> bool {
        ctx.atomically(|tx| self.tx_move(tx, from, to))
    }

    fn range_collect(&self, ctx: &mut ThreadCtx, range: RangeInclusive<Key>) -> Vec<(Key, Value)> {
        ctx.atomically_kind(TxKind::ReadOnly, |tx| {
            self.tx_range_collect(tx, range.clone())
        })
    }

    fn len(&self, ctx: &mut ThreadCtx) -> usize {
        ctx.atomically_kind(TxKind::ReadOnly, |tx| self.tx_len(tx))
    }

    fn len_quiescent(&self) -> usize {
        self.entries_quiescent().len()
    }

    fn name(&self) -> &'static str {
        "RBtree"
    }
}

impl TxMapVersioned for RedBlackTree {
    fn atomically_versioned<R>(
        &self,
        ctx: &mut ThreadCtx,
        mut body: impl for<'t> FnMut(&'t Self, &mut Transaction<'t>) -> TxResult<R>,
    ) -> (R, u64) {
        ctx.atomically_versioned(|tx| body(self, tx))
    }

    fn snapshot_versioned(&self, ctx: &mut ThreadCtx) -> (Vec<(Key, Value)>, u64) {
        ctx.atomically_versioned_kind(TxKind::ReadOnly, |tx| {
            self.tx_range_collect(tx, 0..=Key::MAX)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_stm::Stm;
    use std::collections::BTreeMap;

    #[test]
    fn insert_lookup_delete_roundtrip() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let tree = RedBlackTree::new();
        assert!(tree.insert(&mut ctx, 10, 1));
        assert!(tree.insert(&mut ctx, 5, 2));
        assert!(tree.insert(&mut ctx, 15, 3));
        assert!(!tree.insert(&mut ctx, 10, 4));
        assert_eq!(tree.get(&mut ctx, 15), Some(3));
        assert!(tree.delete(&mut ctx, 10));
        assert!(!tree.delete(&mut ctx, 10));
        assert!(!tree.contains(&mut ctx, 10));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn sequential_inserts_stay_logarithmic() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let tree = RedBlackTree::new();
        for k in 0..1024u64 {
            assert!(tree.insert(&mut ctx, k, k));
        }
        tree.check_invariants().unwrap();
        let depth = tree.depth_quiescent();
        assert!(depth <= 2 * 11, "red-black depth bound violated: {depth}");
        assert_eq!(tree.len_quiescent(), 1024);
    }

    #[test]
    fn randomized_against_btreemap_oracle() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let tree = RedBlackTree::new();
        let mut oracle = BTreeMap::new();
        // Deterministic pseudo-random operation mix.
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..4000u64 {
            let key = rng() % 256;
            match rng() % 3 {
                0 => {
                    // The trees do not overwrite on duplicate insert, so the
                    // oracle must not either.
                    let expected =
                        if let std::collections::btree_map::Entry::Vacant(e) = oracle.entry(key) {
                            e.insert(step);
                            true
                        } else {
                            false
                        };
                    assert_eq!(
                        tree.insert(&mut ctx, key, step),
                        expected,
                        "insert divergence at step {step} key {key}"
                    );
                }
                1 => {
                    assert_eq!(
                        tree.delete(&mut ctx, key),
                        oracle.remove(&key).is_some(),
                        "delete divergence at step {step} key {key}"
                    );
                }
                _ => {
                    assert_eq!(
                        tree.get(&mut ctx, key),
                        oracle.get(&key).copied(),
                        "lookup divergence at step {step} key {key}"
                    );
                }
            }
            if step % 64 == 0 {
                tree.check_invariants().unwrap();
            }
        }
        tree.check_invariants().unwrap();
        let got: Vec<(u64, u64)> = tree.entries_quiescent();
        let expected: Vec<(u64, u64)> = oracle.into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn concurrent_disjoint_ranges() {
        let stm = Stm::default_config();
        let tree = Arc::new(RedBlackTree::new());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let tree = Arc::clone(&tree);
                let mut ctx = stm.register();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = t * 1000 + i;
                        assert!(tree.insert(&mut ctx, k, k));
                        if i % 4 == 0 {
                            assert!(tree.delete(&mut ctx, k));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.len_quiescent(), 4 * 150);
    }

    #[test]
    fn move_entry_composes_atomically() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let tree = RedBlackTree::new();
        tree.insert(&mut ctx, 3, 33);
        assert!(tree.move_entry(&mut ctx, 3, 7));
        assert_eq!(tree.get(&mut ctx, 7), Some(33));
        assert!(!tree.contains(&mut ctx, 3));
        tree.check_invariants().unwrap();
    }
}
