//! Transaction-encapsulated AVL tree.
//!
//! This is the "tightly coupled" baseline of the paper (§2): the lookup, the
//! abstraction change, the threshold check and the rebalancing rotations all
//! execute inside a *single* transaction, so the read set covers the whole
//! search path and the write set grows with every rotation — precisely the
//! behaviour whose cost Table 1 and Figure 3 measure. It mirrors the AVL tree
//! shipped with STAMP that the paper evaluates.

use std::ops::{ControlFlow, RangeInclusive};
use std::sync::Arc;

use sf_stm::{TCell, ThreadCtx, Transaction, TxKind, TxResult};
use sf_tree::map::{ScanOrder, TxMap, TxMapInTx, TxMapVersioned, TxOrderedMapInTx};
use sf_tree::{Key, NodeId, TxArena, Value};

/// AVL node: key and value are mutable because deletion of a two-child node
/// copies the successor into place.
#[derive(Debug)]
pub struct AvlNode {
    key: TCell<Key>,
    value: TCell<Value>,
    left: TCell<NodeId>,
    right: TCell<NodeId>,
    height: TCell<i32>,
}

impl Default for AvlNode {
    fn default() -> Self {
        AvlNode {
            key: TCell::new(0),
            value: TCell::new(0),
            left: TCell::new(NodeId::NIL),
            right: TCell::new(NodeId::NIL),
            height: TCell::new(1),
        }
    }
}

/// Transaction-encapsulated AVL tree (in-transaction rebalancing).
#[derive(Debug)]
pub struct AvlTree {
    arena: Arc<TxArena<AvlNode>>,
    root: TCell<NodeId>,
    rotations: std::sync::atomic::AtomicU64,
}

impl AvlTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        AvlTree {
            arena: Arc::new(TxArena::new()),
            root: TCell::new(NodeId::NIL),
            rotations: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Create an empty tree with a bounded arena.
    pub fn with_capacity(capacity: usize) -> Self {
        AvlTree {
            arena: Arc::new(TxArena::with_capacity(capacity)),
            root: TCell::new(NodeId::NIL),
            rotations: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of rotation attempts performed while rebalancing (including
    /// rotations of attempts that later aborted). Used for the rotation-count
    /// comparison of §5.5.
    pub fn rotation_attempts(&self) -> u64 {
        // sf-lint: allow(relaxed-atomic, rotation telemetry; read once for the end-of-run report)
        self.rotations.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn node(&self, id: NodeId) -> &AvlNode {
        self.arena.get(id)
    }

    fn height<'env>(&'env self, tx: &mut Transaction<'env>, id: NodeId) -> TxResult<i32> {
        if id.is_nil() {
            Ok(0)
        } else {
            tx.read(&self.node(id).height)
        }
    }

    fn update_height<'env>(&'env self, tx: &mut Transaction<'env>, id: NodeId) -> TxResult<i32> {
        let node = self.node(id);
        let left = tx.read(&node.left)?;
        let right = tx.read(&node.right)?;
        let lh = self.height(tx, left)?;
        let rh = self.height(tx, right)?;
        let h = 1 + lh.max(rh);
        if tx.read(&node.height)? != h {
            tx.write(&node.height, h)?;
        }
        Ok(h)
    }

    fn balance_factor<'env>(&'env self, tx: &mut Transaction<'env>, id: NodeId) -> TxResult<i32> {
        let node = self.node(id);
        let left = tx.read(&node.left)?;
        let right = tx.read(&node.right)?;
        let lh = self.height(tx, left)?;
        let rh = self.height(tx, right)?;
        Ok(lh - rh)
    }

    /// Rotate the subtree rooted at `id` to the right, returning the new
    /// subtree root.
    fn rotate_right<'env>(&'env self, tx: &mut Transaction<'env>, id: NodeId) -> TxResult<NodeId> {
        self.rotations
            // sf-lint: allow(relaxed-atomic, rotation telemetry counter; no reader synchronizes on it)
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let node = self.node(id);
        let pivot = tx.read(&node.left)?;
        let pivot_node = self.node(pivot);
        let transfer = tx.read(&pivot_node.right)?;
        tx.write(&node.left, transfer)?;
        tx.write(&pivot_node.right, id)?;
        self.update_height(tx, id)?;
        self.update_height(tx, pivot)?;
        Ok(pivot)
    }

    /// Rotate the subtree rooted at `id` to the left, returning the new
    /// subtree root.
    fn rotate_left<'env>(&'env self, tx: &mut Transaction<'env>, id: NodeId) -> TxResult<NodeId> {
        self.rotations
            // sf-lint: allow(relaxed-atomic, rotation telemetry counter; no reader synchronizes on it)
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let node = self.node(id);
        let pivot = tx.read(&node.right)?;
        let pivot_node = self.node(pivot);
        let transfer = tx.read(&pivot_node.left)?;
        tx.write(&node.right, transfer)?;
        tx.write(&pivot_node.left, id)?;
        self.update_height(tx, id)?;
        self.update_height(tx, pivot)?;
        Ok(pivot)
    }

    /// AVL rebalancing step at `id`; returns the (possibly new) subtree root.
    fn rebalance<'env>(&'env self, tx: &mut Transaction<'env>, id: NodeId) -> TxResult<NodeId> {
        self.update_height(tx, id)?;
        let bf = self.balance_factor(tx, id)?;
        if bf > 1 {
            let node = self.node(id);
            let left = tx.read(&node.left)?;
            if self.balance_factor(tx, left)? < 0 {
                let new_left = self.rotate_left(tx, left)?;
                tx.write(&node.left, new_left)?;
            }
            return self.rotate_right(tx, id);
        }
        if bf < -1 {
            let node = self.node(id);
            let right = tx.read(&node.right)?;
            if self.balance_factor(tx, right)? > 0 {
                let new_right = self.rotate_right(tx, right)?;
                tx.write(&node.right, new_right)?;
            }
            return self.rotate_left(tx, id);
        }
        Ok(id)
    }

    fn insert_rec<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        id: NodeId,
        key: Key,
        value: Value,
    ) -> TxResult<(NodeId, bool)> {
        if id.is_nil() {
            let new_id = self.arena.alloc();
            let new_node = self.node(new_id);
            new_node.key.unsync_store(key);
            new_node.value.unsync_store(value);
            new_node.left.unsync_store(NodeId::NIL);
            new_node.right.unsync_store(NodeId::NIL);
            new_node.height.unsync_store(1);
            let arena = Arc::clone(&self.arena);
            tx.on_abort(move || arena.recycle(new_id));
            return Ok((new_id, true));
        }
        let node = self.node(id);
        let k = tx.read(&node.key)?;
        if key == k {
            return Ok((id, false));
        }
        let inserted = if key < k {
            let left = tx.read(&node.left)?;
            let (new_left, inserted) = self.insert_rec(tx, left, key, value)?;
            if inserted && new_left != left {
                tx.write(&node.left, new_left)?;
            }
            inserted
        } else {
            let right = tx.read(&node.right)?;
            let (new_right, inserted) = self.insert_rec(tx, right, key, value)?;
            if inserted && new_right != right {
                tx.write(&node.right, new_right)?;
            }
            inserted
        };
        if !inserted {
            return Ok((id, false));
        }
        Ok((self.rebalance(tx, id)?, true))
    }

    /// Smallest `(key, value)` of the subtree rooted at `id` (which must not
    /// be ⊥).
    fn min_of<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        mut id: NodeId,
    ) -> TxResult<(Key, Value)> {
        loop {
            let node = self.node(id);
            let left = tx.read(&node.left)?;
            if left.is_nil() {
                return Ok((tx.read(&node.key)?, tx.read(&node.value)?));
            }
            id = left;
        }
    }

    fn delete_rec<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        id: NodeId,
        key: Key,
    ) -> TxResult<(NodeId, bool)> {
        if id.is_nil() {
            return Ok((NodeId::NIL, false));
        }
        let node = self.node(id);
        let k = tx.read(&node.key)?;
        if key < k {
            let left = tx.read(&node.left)?;
            let (new_left, deleted) = self.delete_rec(tx, left, key)?;
            if !deleted {
                return Ok((id, false));
            }
            if new_left != left {
                tx.write(&node.left, new_left)?;
            }
            return Ok((self.rebalance(tx, id)?, true));
        }
        if key > k {
            let right = tx.read(&node.right)?;
            let (new_right, deleted) = self.delete_rec(tx, right, key)?;
            if !deleted {
                return Ok((id, false));
            }
            if new_right != right {
                tx.write(&node.right, new_right)?;
            }
            return Ok((self.rebalance(tx, id)?, true));
        }
        // Found the node to delete.
        let left = tx.read(&node.left)?;
        let right = tx.read(&node.right)?;
        if left.is_nil() {
            return Ok((right, true));
        }
        if right.is_nil() {
            return Ok((left, true));
        }
        // Two children: replace with the in-order successor and delete the
        // successor from the right subtree.
        let (succ_key, succ_value) = self.min_of(tx, right)?;
        tx.write(&node.key, succ_key)?;
        tx.write(&node.value, succ_value)?;
        let (new_right, _) = self.delete_rec(tx, right, succ_key)?;
        if new_right != right {
            tx.write(&node.right, new_right)?;
        }
        Ok((self.rebalance(tx, id)?, true))
    }

    /// Quiescent in-order key/value dump (test oracle).
    pub fn entries_quiescent(&self) -> Vec<(Key, Value)> {
        fn rec(tree: &AvlTree, id: NodeId, out: &mut Vec<(Key, Value)>) {
            if id.is_nil() {
                return;
            }
            let n = tree.node(id);
            rec(tree, n.left.unsync_load(), out);
            out.push((n.key.unsync_load(), n.value.unsync_load()));
            rec(tree, n.right.unsync_load(), out);
        }
        let mut out = Vec::new();
        rec(self, self.root.unsync_load(), &mut out);
        out
    }

    /// Verify the AVL invariants while quiescent: BST ordering and
    /// per-node balance factor in `{-1, 0, 1}` with consistent heights.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn rec(
            tree: &AvlTree,
            id: NodeId,
            low: Option<Key>,
            high: Option<Key>,
        ) -> Result<i32, String> {
            if id.is_nil() {
                return Ok(0);
            }
            let n = tree.node(id);
            let k = n.key.unsync_load();
            if low.is_some_and(|l| k <= l) || high.is_some_and(|h| k >= h) {
                return Err(format!("BST violation at key {k}"));
            }
            let lh = rec(tree, n.left.unsync_load(), low, Some(k))?;
            let rh = rec(tree, n.right.unsync_load(), Some(k), high)?;
            let stored = n.height.unsync_load();
            let actual = 1 + lh.max(rh);
            if stored != actual {
                return Err(format!(
                    "height mismatch at key {k}: stored {stored}, actual {actual}"
                ));
            }
            if (lh - rh).abs() > 1 {
                return Err(format!("AVL imbalance at key {k}: {lh} vs {rh}"));
            }
            Ok(actual)
        }
        rec(self, self.root.unsync_load(), None, None).map(|_| ())
    }

    /// Longest root-to-leaf path, counted in nodes.
    pub fn depth_quiescent(&self) -> usize {
        fn rec(tree: &AvlTree, id: NodeId) -> usize {
            if id.is_nil() {
                return 0;
            }
            let n = tree.node(id);
            1 + rec(tree, n.left.unsync_load()).max(rec(tree, n.right.unsync_load()))
        }
        rec(self, self.root.unsync_load())
    }
}

impl Default for AvlTree {
    fn default() -> Self {
        Self::new()
    }
}

impl TxMapInTx for AvlTree {
    fn tx_get<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<Option<Value>> {
        let mut curr = tx.read(&self.root)?;
        while !curr.is_nil() {
            let node = self.node(curr);
            let k = tx.read(&node.key)?;
            if key == k {
                return Ok(Some(tx.read(&node.value)?));
            }
            curr = if key < k {
                tx.read(&node.left)?
            } else {
                tx.read(&node.right)?
            };
        }
        Ok(None)
    }

    fn tx_insert<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        key: Key,
        value: Value,
    ) -> TxResult<bool> {
        let root = tx.read(&self.root)?;
        let (new_root, inserted) = self.insert_rec(tx, root, key, value)?;
        if inserted && new_root != root {
            tx.write(&self.root, new_root)?;
        }
        Ok(inserted)
    }

    fn tx_delete<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<bool> {
        let root = tx.read(&self.root)?;
        let (new_root, deleted) = self.delete_rec(tx, root, key)?;
        if deleted && new_root != root {
            tx.write(&self.root, new_root)?;
        }
        Ok(deleted)
    }
}

impl sf_tree::scan::ScanNode for AvlNode {
    /// Keys are read transactionally — the AVL delete rewrites a node's key
    /// when splicing the in-order successor into a two-child node, so key
    /// reads must be conflict-checked like any other field.
    fn scan_key<'env>(&'env self, tx: &mut Transaction<'env>) -> TxResult<Key> {
        tx.read(&self.key)
    }

    fn scan_entry<'env>(&'env self, tx: &mut Transaction<'env>) -> TxResult<Option<(Key, Value)>> {
        // No tombstones: every reachable node is live.
        Ok(Some((tx.read(&self.key)?, tx.read(&self.value)?)))
    }

    fn left_child(&self) -> &TCell<NodeId> {
        &self.left
    }

    fn right_child(&self) -> &TCell<NodeId> {
        &self.right
    }
}

impl TxOrderedMapInTx for AvlTree {
    /// In-order range walk inside the caller's transaction (the generic
    /// walker of [`sf_tree::scan`]).
    fn tx_range_visit<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        range: RangeInclusive<Key>,
        order: ScanOrder,
        visit: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> TxResult<()> {
        let root = tx.read(&self.root)?;
        sf_tree::scan::bst_range_visit(|id| self.node(id), root, tx, range, order, visit)
    }
}

impl TxMap for AvlTree {
    type Handle = ThreadCtx;

    fn register(&self, ctx: ThreadCtx) -> ThreadCtx {
        ctx
    }

    fn contains(&self, ctx: &mut ThreadCtx, key: Key) -> bool {
        ctx.atomically(|tx| self.tx_contains(tx, key))
    }

    fn get(&self, ctx: &mut ThreadCtx, key: Key) -> Option<Value> {
        ctx.atomically(|tx| self.tx_get(tx, key))
    }

    fn insert(&self, ctx: &mut ThreadCtx, key: Key, value: Value) -> bool {
        ctx.atomically(|tx| self.tx_insert(tx, key, value))
    }

    fn delete(&self, ctx: &mut ThreadCtx, key: Key) -> bool {
        ctx.atomically(|tx| self.tx_delete(tx, key))
    }

    fn delete_if(&self, ctx: &mut ThreadCtx, key: Key, expected: Value) -> bool {
        ctx.atomically(|tx| self.tx_delete_if(tx, key, expected))
    }

    fn move_entry(&self, ctx: &mut ThreadCtx, from: Key, to: Key) -> bool {
        ctx.atomically(|tx| self.tx_move(tx, from, to))
    }

    fn range_collect(&self, ctx: &mut ThreadCtx, range: RangeInclusive<Key>) -> Vec<(Key, Value)> {
        ctx.atomically_kind(TxKind::ReadOnly, |tx| {
            self.tx_range_collect(tx, range.clone())
        })
    }

    fn len(&self, ctx: &mut ThreadCtx) -> usize {
        ctx.atomically_kind(TxKind::ReadOnly, |tx| self.tx_len(tx))
    }

    fn len_quiescent(&self) -> usize {
        self.entries_quiescent().len()
    }

    fn name(&self) -> &'static str {
        "AVLtree"
    }
}

impl TxMapVersioned for AvlTree {
    fn atomically_versioned<R>(
        &self,
        ctx: &mut ThreadCtx,
        mut body: impl for<'t> FnMut(&'t Self, &mut Transaction<'t>) -> TxResult<R>,
    ) -> (R, u64) {
        ctx.atomically_versioned(|tx| body(self, tx))
    }

    fn snapshot_versioned(&self, ctx: &mut ThreadCtx) -> (Vec<(Key, Value)>, u64) {
        ctx.atomically_versioned_kind(TxKind::ReadOnly, |tx| {
            self.tx_range_collect(tx, 0..=Key::MAX)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_stm::Stm;

    #[test]
    fn insert_lookup_delete() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let tree = AvlTree::new();
        assert!(tree.insert(&mut ctx, 5, 50));
        assert!(tree.insert(&mut ctx, 2, 20));
        assert!(tree.insert(&mut ctx, 8, 80));
        assert!(!tree.insert(&mut ctx, 5, 51));
        assert_eq!(tree.get(&mut ctx, 2), Some(20));
        assert!(tree.delete(&mut ctx, 2));
        assert!(!tree.delete(&mut ctx, 2));
        assert!(!tree.contains(&mut ctx, 2));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn stays_balanced_under_sequential_inserts() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let tree = AvlTree::new();
        for k in 0..512u64 {
            assert!(tree.insert(&mut ctx, k, k));
        }
        tree.check_invariants().unwrap();
        let depth = tree.depth_quiescent();
        assert!(
            depth <= 10,
            "AVL depth for 512 keys should be <= 10, got {depth}"
        );
        assert_eq!(tree.len_quiescent(), 512);
    }

    #[test]
    fn delete_two_children_nodes_keeps_invariants() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let tree = AvlTree::new();
        let keys: Vec<u64> = (0..128).map(|i| (i * 53) % 127).collect();
        for &k in &keys {
            tree.insert(&mut ctx, k, k + 1);
        }
        for &k in keys.iter().step_by(3) {
            assert!(tree.delete(&mut ctx, k));
            tree.check_invariants().unwrap();
        }
        let expected: std::collections::BTreeSet<u64> = keys
            .iter()
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .filter(|k| !keys.iter().step_by(3).any(|d| d == k))
            .collect();
        let got: Vec<u64> = tree.entries_quiescent().iter().map(|(k, _)| *k).collect();
        assert_eq!(got, expected.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_updates_preserve_invariants() {
        let stm = Stm::default_config();
        let tree = Arc::new(AvlTree::new());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let tree = Arc::clone(&tree);
                let mut ctx = stm.register();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = t * 1000 + i;
                        assert!(tree.insert(&mut ctx, k, k));
                        if i % 2 == 0 {
                            assert!(tree.delete(&mut ctx, k));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.len_quiescent(), 4 * 100);
    }

    #[test]
    fn move_entry_composes() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let tree = AvlTree::new();
        tree.insert(&mut ctx, 1, 10);
        assert!(tree.move_entry(&mut ctx, 1, 2));
        assert_eq!(tree.get(&mut ctx, 2), Some(10));
        assert!(!tree.contains(&mut ctx, 1));
        tree.check_invariants().unwrap();
    }
}
