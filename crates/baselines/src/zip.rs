//! Transaction-encapsulated zip tree.
//!
//! The zip tree of Tarjan, Levy and Timmel ("Zip Trees", WADS 2019) is a
//! randomized BST that is **rotation-free**: every node carries a geometric
//! rank, ranks obey a max-heap order, and insert/delete restructure by
//! *unzipping* a search path into two spines (insert) or *zipping* two
//! spines back together (delete). Nothing is ever rebalanced after the
//! fact — there is no fix-up loop and no background maintenance — which
//! makes it the natural self-adjustment-free control for the hot-key
//! restructuring experiments: any depth advantage the speculation-friendly
//! tree gains on skewed workloads has to come from its maintenance thread,
//! not from the STM substrate.
//!
//! Ranks are drawn *deterministically* from the key (a splitmix64 hash's
//! trailing zeros, i.e. Geometric(1/2)), so an aborted and retried
//! transaction re-derives the same rank and the structure is a function of
//! the key set alone — equal-rank ties are broken so the smaller key is the
//! ancestor, giving the canonical invariant: a left child's rank is strictly
//! smaller than its parent's, a right child's is at most its parent's.

use std::ops::{ControlFlow, RangeInclusive};
use std::sync::Arc;

use sf_stm::{TCell, ThreadCtx, Transaction, TxKind, TxResult};
use sf_tree::map::{ScanOrder, TxMap, TxMapInTx, TxMapVersioned, TxOrderedMapInTx};
use sf_tree::{Key, NodeId, TxArena, Value};

/// Zip-tree node. The rank is not stored: it is a pure function of the key
/// ([`rank_of`]), so retries and invariant checks recompute it.
#[derive(Debug)]
pub struct ZipNode {
    key: TCell<Key>,
    value: TCell<Value>,
    left: TCell<NodeId>,
    right: TCell<NodeId>,
}

impl Default for ZipNode {
    fn default() -> Self {
        ZipNode {
            key: TCell::new(0),
            value: TCell::new(0),
            left: TCell::new(NodeId::NIL),
            right: TCell::new(NodeId::NIL),
        }
    }
}

/// Geometric(1/2) rank derived from the key by a splitmix64-style hash:
/// the number of trailing zero bits, capped at 63.
fn rank_of(key: Key) -> u32 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z | (1 << 63)).trailing_zeros()
}

/// Does a node with `(rank_a, key_a)` outrank (become the ancestor of) one
/// with `(rank_b, key_b)`? Higher rank wins; equal ranks go to the smaller
/// key.
fn outranks(rank_a: u32, key_a: Key, rank_b: u32, key_b: Key) -> bool {
    rank_a > rank_b || (rank_a == rank_b && key_a < key_b)
}

/// Transaction-encapsulated zip tree (rotation-free randomized BST).
#[derive(Debug)]
pub struct ZipTree {
    arena: Arc<TxArena<ZipNode>>,
    root: TCell<NodeId>,
}

impl ZipTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        ZipTree {
            arena: Arc::new(TxArena::new()),
            root: TCell::new(NodeId::NIL),
        }
    }

    fn node(&self, id: NodeId) -> &ZipNode {
        self.arena.get(id)
    }

    /// Find the node carrying `key`, if any.
    fn find_node<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        key: Key,
    ) -> TxResult<Option<NodeId>> {
        let mut curr = tx.read(&self.root)?;
        while !curr.is_nil() {
            let node = self.node(curr);
            let k = tx.read(&node.key)?;
            if key == k {
                return Ok(Some(curr));
            }
            curr = if key < k {
                tx.read(&node.left)?
            } else {
                tx.read(&node.right)?
            };
        }
        Ok(None)
    }

    /// Unzip the subtree rooted at `curr` along `key`: nodes smaller than
    /// `key` are chained under `less_hook` (as right descendants), larger
    /// ones under `more_hook` (as left descendants). `key` itself must not
    /// occur in the subtree.
    fn unzip<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        mut curr: NodeId,
        key: Key,
        mut less_hook: &'env TCell<NodeId>,
        mut more_hook: &'env TCell<NodeId>,
    ) -> TxResult<()> {
        while !curr.is_nil() {
            let n = self.node(curr);
            let k = tx.read(&n.key)?;
            if k < key {
                let next = tx.read(&n.right)?;
                tx.write(less_hook, curr)?;
                less_hook = &n.right;
                curr = next;
            } else {
                let next = tx.read(&n.left)?;
                tx.write(more_hook, curr)?;
                more_hook = &n.left;
                curr = next;
            }
        }
        tx.write(less_hook, NodeId::NIL)?;
        tx.write(more_hook, NodeId::NIL)
    }

    /// Zip the spines of two subtrees — every key in `left` smaller than
    /// every key in `right` — into one tree linked at `hook`.
    fn zip<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        mut left: NodeId,
        mut right: NodeId,
        mut hook: &'env TCell<NodeId>,
    ) -> TxResult<()> {
        loop {
            if left.is_nil() {
                return tx.write(hook, right);
            }
            if right.is_nil() {
                return tx.write(hook, left);
            }
            let ln = self.node(left);
            let rn = self.node(right);
            let lk = tx.read(&ln.key)?;
            let rk = tx.read(&rn.key)?;
            if outranks(rank_of(lk), lk, rank_of(rk), rk) {
                let next = tx.read(&ln.right)?;
                tx.write(hook, left)?;
                hook = &ln.right;
                left = next;
            } else {
                let next = tx.read(&rn.left)?;
                tx.write(hook, right)?;
                hook = &rn.left;
                right = next;
            }
        }
    }

    /// Quiescent in-order key/value dump (test oracle).
    pub fn entries_quiescent(&self) -> Vec<(Key, Value)> {
        fn rec(tree: &ZipTree, id: NodeId, out: &mut Vec<(Key, Value)>) {
            if id.is_nil() {
                return;
            }
            let n = tree.node(id);
            rec(tree, n.left.unsync_load(), out);
            out.push((n.key.unsync_load(), n.value.unsync_load()));
            rec(tree, n.right.unsync_load(), out);
        }
        let mut out = Vec::new();
        rec(self, self.root.unsync_load(), &mut out);
        out
    }

    /// Verify the zip-tree invariants while quiescent: BST ordering, and the
    /// rank max-heap with smaller-key tie-break — a left child's rank is
    /// strictly below its parent's, a right child's is at most its parent's.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_rec(self.root.unsync_load(), None, None)
    }

    fn check_rec(&self, id: NodeId, low: Option<Key>, high: Option<Key>) -> Result<(), String> {
        if id.is_nil() {
            return Ok(());
        }
        let n = self.node(id);
        let k = n.key.unsync_load();
        if low.is_some_and(|l| k <= l) || high.is_some_and(|h| k >= h) {
            return Err(format!("BST violation at key {k}"));
        }
        let rank = rank_of(k);
        let left = n.left.unsync_load();
        if !left.is_nil() {
            let lk = self.node(left).key.unsync_load();
            if rank_of(lk) >= rank {
                return Err(format!(
                    "rank violation: left child {lk} (rank {}) under {k} (rank {rank})",
                    rank_of(lk)
                ));
            }
        }
        let right = n.right.unsync_load();
        if !right.is_nil() {
            let rk = self.node(right).key.unsync_load();
            if rank_of(rk) > rank {
                return Err(format!(
                    "rank violation: right child {rk} (rank {}) under {k} (rank {rank})",
                    rank_of(rk)
                ));
            }
        }
        self.check_rec(left, low, Some(k))?;
        self.check_rec(right, Some(k), high)
    }

    /// Longest root-to-leaf path, counted in nodes.
    pub fn depth_quiescent(&self) -> usize {
        fn rec(tree: &ZipTree, id: NodeId) -> usize {
            if id.is_nil() {
                return 0;
            }
            let n = tree.node(id);
            1 + rec(tree, n.left.unsync_load()).max(rec(tree, n.right.unsync_load()))
        }
        rec(self, self.root.unsync_load())
    }
}

impl Default for ZipTree {
    fn default() -> Self {
        Self::new()
    }
}

impl TxMapInTx for ZipTree {
    fn tx_get<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<Option<Value>> {
        match self.find_node(tx, key)? {
            Some(id) => Ok(Some(tx.read(&self.node(id).value)?)),
            None => Ok(None),
        }
    }

    fn tx_insert<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        key: Key,
        value: Value,
    ) -> TxResult<bool> {
        if self.find_node(tx, key)?.is_some() {
            return Ok(false);
        }
        // Descend past every node that outranks the new key; the first node
        // that does not is displaced and unzipped below it.
        let rank = rank_of(key);
        let mut hook = &self.root;
        let mut curr = tx.read(hook)?;
        while !curr.is_nil() {
            let n = self.node(curr);
            let k = tx.read(&n.key)?;
            if !outranks(rank_of(k), k, rank, key) {
                break;
            }
            hook = if key < k { &n.left } else { &n.right };
            curr = tx.read(hook)?;
        }
        let z = self.arena.alloc();
        let zn = self.node(z);
        zn.key.unsync_store(key);
        zn.value.unsync_store(value);
        zn.left.unsync_store(NodeId::NIL);
        zn.right.unsync_store(NodeId::NIL);
        let arena = Arc::clone(&self.arena);
        tx.on_abort(move || arena.recycle(z));
        tx.write(hook, z)?;
        self.unzip(tx, curr, key, &zn.left, &zn.right)?;
        Ok(true)
    }

    fn tx_delete<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<bool> {
        let mut hook = &self.root;
        let mut curr = tx.read(hook)?;
        loop {
            if curr.is_nil() {
                return Ok(false);
            }
            let n = self.node(curr);
            let k = tx.read(&n.key)?;
            if key == k {
                let left = tx.read(&n.left)?;
                let right = tx.read(&n.right)?;
                // The node stays in the arena: a doomed concurrent traversal
                // may still be walking it, and the STM validates it away at
                // commit time.
                self.zip(tx, left, right, hook)?;
                return Ok(true);
            }
            hook = if key < k { &n.left } else { &n.right };
            curr = tx.read(hook)?;
        }
    }
}

impl sf_tree::scan::ScanNode for ZipNode {
    fn scan_key<'env>(&'env self, tx: &mut Transaction<'env>) -> TxResult<Key> {
        tx.read(&self.key)
    }

    fn scan_entry<'env>(&'env self, tx: &mut Transaction<'env>) -> TxResult<Option<(Key, Value)>> {
        // No tombstones: every reachable node is live.
        Ok(Some((tx.read(&self.key)?, tx.read(&self.value)?)))
    }

    fn left_child(&self) -> &TCell<NodeId> {
        &self.left
    }

    fn right_child(&self) -> &TCell<NodeId> {
        &self.right
    }
}

impl TxOrderedMapInTx for ZipTree {
    /// In-order range walk inside the caller's transaction (the generic
    /// walker of [`sf_tree::scan`]).
    fn tx_range_visit<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        range: RangeInclusive<Key>,
        order: ScanOrder,
        visit: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> TxResult<()> {
        let root = tx.read(&self.root)?;
        sf_tree::scan::bst_range_visit(|id| self.node(id), root, tx, range, order, visit)
    }
}

impl TxMap for ZipTree {
    type Handle = ThreadCtx;

    fn register(&self, ctx: ThreadCtx) -> ThreadCtx {
        ctx
    }

    fn contains(&self, ctx: &mut ThreadCtx, key: Key) -> bool {
        ctx.atomically(|tx| self.tx_contains(tx, key))
    }

    fn get(&self, ctx: &mut ThreadCtx, key: Key) -> Option<Value> {
        ctx.atomically(|tx| self.tx_get(tx, key))
    }

    fn insert(&self, ctx: &mut ThreadCtx, key: Key, value: Value) -> bool {
        ctx.atomically(|tx| self.tx_insert(tx, key, value))
    }

    fn delete(&self, ctx: &mut ThreadCtx, key: Key) -> bool {
        ctx.atomically(|tx| self.tx_delete(tx, key))
    }

    fn delete_if(&self, ctx: &mut ThreadCtx, key: Key, expected: Value) -> bool {
        ctx.atomically(|tx| self.tx_delete_if(tx, key, expected))
    }

    fn move_entry(&self, ctx: &mut ThreadCtx, from: Key, to: Key) -> bool {
        ctx.atomically(|tx| self.tx_move(tx, from, to))
    }

    fn range_collect(&self, ctx: &mut ThreadCtx, range: RangeInclusive<Key>) -> Vec<(Key, Value)> {
        ctx.atomically_kind(TxKind::ReadOnly, |tx| {
            self.tx_range_collect(tx, range.clone())
        })
    }

    fn len(&self, ctx: &mut ThreadCtx) -> usize {
        ctx.atomically_kind(TxKind::ReadOnly, |tx| self.tx_len(tx))
    }

    fn len_quiescent(&self) -> usize {
        self.entries_quiescent().len()
    }

    fn name(&self) -> &'static str {
        "ZipTree"
    }
}

impl TxMapVersioned for ZipTree {
    fn atomically_versioned<R>(
        &self,
        ctx: &mut ThreadCtx,
        mut body: impl for<'t> FnMut(&'t Self, &mut Transaction<'t>) -> TxResult<R>,
    ) -> (R, u64) {
        ctx.atomically_versioned(|tx| body(self, tx))
    }

    fn snapshot_versioned(&self, ctx: &mut ThreadCtx) -> (Vec<(Key, Value)>, u64) {
        ctx.atomically_versioned_kind(TxKind::ReadOnly, |tx| {
            self.tx_range_collect(tx, 0..=Key::MAX)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_stm::Stm;
    use std::collections::BTreeMap;

    #[test]
    fn insert_lookup_delete_roundtrip() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let tree = ZipTree::new();
        assert!(tree.insert(&mut ctx, 10, 1));
        assert!(tree.insert(&mut ctx, 5, 2));
        assert!(tree.insert(&mut ctx, 15, 3));
        assert!(!tree.insert(&mut ctx, 10, 4));
        assert_eq!(tree.get(&mut ctx, 15), Some(3));
        assert!(tree.delete(&mut ctx, 10));
        assert!(!tree.delete(&mut ctx, 10));
        assert!(!tree.contains(&mut ctx, 10));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn sequential_inserts_stay_logarithmic_without_rotations() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let tree = ZipTree::new();
        for k in 0..1024u64 {
            assert!(tree.insert(&mut ctx, k, k));
        }
        tree.check_invariants().unwrap();
        let depth = tree.depth_quiescent();
        // Expected depth is ~1.5 log2(n) w.h.p.; the rank hash is fixed, so
        // this bound is deterministic for this key set.
        assert!(depth <= 4 * 11, "zip-tree depth degenerated: {depth}");
        assert_eq!(tree.len_quiescent(), 1024);
    }

    #[test]
    fn randomized_against_btreemap_oracle() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let tree = ZipTree::new();
        let mut oracle = BTreeMap::new();
        let mut state = 0x8008_1355u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..4000u64 {
            let key = rng() % 256;
            match rng() % 3 {
                0 => {
                    // Duplicate inserts do not overwrite; mirror that in the
                    // oracle.
                    let expected =
                        if let std::collections::btree_map::Entry::Vacant(e) = oracle.entry(key) {
                            e.insert(step);
                            true
                        } else {
                            false
                        };
                    assert_eq!(
                        tree.insert(&mut ctx, key, step),
                        expected,
                        "insert divergence at step {step} key {key}"
                    );
                }
                1 => {
                    assert_eq!(
                        tree.delete(&mut ctx, key),
                        oracle.remove(&key).is_some(),
                        "delete divergence at step {step} key {key}"
                    );
                }
                _ => {
                    assert_eq!(
                        tree.get(&mut ctx, key),
                        oracle.get(&key).copied(),
                        "lookup divergence at step {step} key {key}"
                    );
                }
            }
            if step % 64 == 0 {
                tree.check_invariants().unwrap();
            }
        }
        tree.check_invariants().unwrap();
        let got: Vec<(u64, u64)> = tree.entries_quiescent();
        let expected: Vec<(u64, u64)> = oracle.into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn structure_is_a_function_of_the_key_set() {
        // History independence: whatever order keys arrive in (and whatever
        // was deleted along the way), the deterministic ranks force a unique
        // shape for a given key set.
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let a = ZipTree::new();
        for k in [3u64, 1, 4, 1, 5, 9, 2, 6, 8, 7] {
            a.insert(&mut ctx, k, k);
        }
        let b = ZipTree::new();
        for k in 0..10u64 {
            b.insert(&mut ctx, k, k);
        }
        b.insert(&mut ctx, 77, 77);
        b.delete(&mut ctx, 77);
        b.delete(&mut ctx, 0);
        fn shape(tree: &ZipTree, id: NodeId, out: &mut Vec<(Key, u32)>) {
            if id.is_nil() {
                return;
            }
            let n = tree.node(id);
            out.push((n.key.unsync_load(), rank_of(n.key.unsync_load())));
            shape(tree, n.left.unsync_load(), out);
            shape(tree, n.right.unsync_load(), out);
        }
        let (mut sa, mut sb) = (Vec::new(), Vec::new());
        shape(&a, a.root.unsync_load(), &mut sa);
        shape(&b, b.root.unsync_load(), &mut sb);
        assert_eq!(sa, sb, "pre-order shapes diverge for the same key set");
    }

    #[test]
    fn concurrent_disjoint_ranges() {
        let stm = Stm::default_config();
        let tree = Arc::new(ZipTree::new());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let tree = Arc::clone(&tree);
                let mut ctx = stm.register();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = t * 1000 + i;
                        assert!(tree.insert(&mut ctx, k, k));
                        if i % 4 == 0 {
                            assert!(tree.delete(&mut ctx, k));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.len_quiescent(), 4 * 150);
    }

    #[test]
    fn move_entry_composes_atomically() {
        let stm = Stm::default_config();
        let mut ctx = stm.register();
        let tree = ZipTree::new();
        tree.insert(&mut ctx, 3, 33);
        assert!(tree.move_entry(&mut ctx, 3, 7));
        assert_eq!(tree.get(&mut ctx, 7), Some(33));
        assert!(!tree.contains(&mut ctx, 3));
        tree.check_invariants().unwrap();
    }
}
