//! The no-restructuring tree (NRtree) baseline of §5.2.
//!
//! "A baseline tree that is similar [to the speculation-friendly tree] but
//! never rebalances the structure whatever modifications occur": deletions
//! stay logical, nodes are never physically removed, and no rotation ever
//! runs, so the tree silently degenerates under biased workloads — exactly
//! the behaviour Figure 3 (right column) exhibits.

use std::ops::{ControlFlow, RangeInclusive};

use sf_stm::{ThreadCtx, Transaction, TxResult};
use sf_tree::map::{ScanOrder, TxMap, TxMapInTx, TxMapVersioned, TxOrderedMapInTx};
use sf_tree::{Key, SfHandle, SpecFriendlyTree, TreeInspect, Value};

/// No-restructuring tree: a speculation-friendly tree whose maintenance
/// thread is never started.
#[derive(Debug, Default)]
pub struct NoRestructureTree {
    inner: SpecFriendlyTree,
}

impl NoRestructureTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        NoRestructureTree {
            inner: SpecFriendlyTree::new(),
        }
    }

    /// Register a worker thread.
    pub fn register(&self, ctx: ThreadCtx) -> SfHandle {
        self.inner.register(ctx)
    }

    /// Quiescent inspection helpers.
    pub fn inspect(&self) -> TreeInspect<'_> {
        self.inner.inspect()
    }
}

impl TxMapInTx for NoRestructureTree {
    fn tx_get<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<Option<Value>> {
        self.inner.tx_get(tx, key)
    }

    fn tx_insert<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        key: Key,
        value: Value,
    ) -> TxResult<bool> {
        self.inner.tx_insert(tx, key, value)
    }

    fn tx_delete<'env>(&'env self, tx: &mut Transaction<'env>, key: Key) -> TxResult<bool> {
        self.inner.tx_delete(tx, key)
    }
}

impl TxOrderedMapInTx for NoRestructureTree {
    /// Same walk as the portable tree; with no maintenance thread the
    /// logically-deleted tombstones accumulate forever, so skipping them is
    /// what keeps scans over this baseline correct.
    fn tx_range_visit<'env>(
        &'env self,
        tx: &mut Transaction<'env>,
        range: RangeInclusive<Key>,
        order: ScanOrder,
        visit: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> TxResult<()> {
        self.inner.tx_range_visit(tx, range, order, visit)
    }
}

impl TxMap for NoRestructureTree {
    type Handle = SfHandle;

    fn register(&self, ctx: ThreadCtx) -> SfHandle {
        self.inner.register(ctx)
    }

    fn contains(&self, handle: &mut SfHandle, key: Key) -> bool {
        TxMap::contains(&self.inner, handle, key)
    }

    fn get(&self, handle: &mut SfHandle, key: Key) -> Option<Value> {
        TxMap::get(&self.inner, handle, key)
    }

    fn insert(&self, handle: &mut SfHandle, key: Key, value: Value) -> bool {
        TxMap::insert(&self.inner, handle, key, value)
    }

    fn delete(&self, handle: &mut SfHandle, key: Key) -> bool {
        TxMap::delete(&self.inner, handle, key)
    }

    fn delete_if(&self, handle: &mut SfHandle, key: Key, expected: Value) -> bool {
        TxMap::delete_if(&self.inner, handle, key, expected)
    }

    fn move_entry(&self, handle: &mut SfHandle, from: Key, to: Key) -> bool {
        TxMap::move_entry(&self.inner, handle, from, to)
    }

    fn range_collect(
        &self,
        handle: &mut SfHandle,
        range: RangeInclusive<Key>,
    ) -> Vec<(Key, Value)> {
        TxMap::range_collect(&self.inner, handle, range)
    }

    fn len(&self, handle: &mut SfHandle) -> usize {
        TxMap::len(&self.inner, handle)
    }

    fn len_quiescent(&self) -> usize {
        self.inner.len_quiescent()
    }

    fn name(&self) -> &'static str {
        "NRtree"
    }
}

impl TxMapVersioned for NoRestructureTree {
    /// The NRtree never starts a maintenance thread, so no node is ever
    /// physically removed or recycled — running the caller's body without
    /// the inner tree's activity (reclamation) guard is safe here.
    fn atomically_versioned<R>(
        &self,
        handle: &mut SfHandle,
        mut body: impl for<'t> FnMut(&'t Self, &mut Transaction<'t>) -> TxResult<R>,
    ) -> (R, u64) {
        handle.ctx_mut().atomically_versioned(|tx| body(self, tx))
    }

    fn snapshot_versioned(&self, handle: &mut SfHandle) -> (Vec<(Key, Value)>, u64) {
        handle
            .ctx_mut()
            .atomically_versioned_kind(sf_stm::TxKind::ReadOnly, |tx| {
                self.tx_range_collect(tx, 0..=Key::MAX)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_stm::Stm;

    #[test]
    fn behaves_like_a_set_but_never_shrinks_or_balances() {
        let stm = Stm::default_config();
        let tree = NoRestructureTree::new();
        let mut h = tree.register(stm.register());
        for k in 0..128u64 {
            assert!(tree.insert(&mut h, k, k));
        }
        for k in (0..128u64).step_by(2) {
            assert!(tree.delete(&mut h, k));
        }
        assert_eq!(tree.len_quiescent(), 64);
        // No restructuring: the in-order insertion chain stays a chain and
        // the physically reachable node count never decreases.
        assert_eq!(tree.inspect().depth(), 128);
        assert_eq!(tree.inspect().reachable_nodes(), 129); // 128 keys + sentinel
        tree.inspect().check_consistency().unwrap();
    }

    #[test]
    fn name_matches_paper_label() {
        assert_eq!(NoRestructureTree::new().name(), "NRtree");
    }
}
