//! The vacation travel-reservation application (§5.5) on speculation-friendly
//! directories: build the database, run concurrent clients, verify the
//! reservation invariants, and print throughput plus the rotation counts.
//!
//! Run with `cargo run --release --example travel_booking`.

use std::sync::Arc;

use speculation_friendly_tree::prelude::*;
use speculation_friendly_tree::vacation::run_vacation;

fn main() {
    let stm = Stm::default_config();
    let manager = Arc::new(Manager::<OptSpecFriendlyTree>::new());

    // One background maintenance thread per directory, as in the paper.
    let maintenance: Vec<_> = ReservationKind::ALL
        .iter()
        .map(|kind| manager.table(*kind).start_maintenance(stm.register()))
        .collect();

    let params = VacationParams::high_contention().with_clients(4);
    println!(
        "running vacation: {} clients, {} transactions, {} relations (high contention)",
        params.clients, params.num_transactions, params.num_relations
    );
    let result = run_vacation(&stm, &manager, &params);
    drop(maintenance);

    println!("structure            : {}", result.structure);
    println!("client transactions  : {}", result.transactions);
    println!("duration             : {:.2?}", result.elapsed);
    println!(
        "transactions/second  : {:.0}",
        result.transactions_per_second()
    );
    println!(
        "STM commits / aborts : {} / {}",
        result.stm.commits, result.stm.aborts
    );
    println!("background rotations : {}", result.rotations);

    manager
        .check_consistency()
        .expect("reservation invariants must hold after the run");
    println!("consistency check    : ok (used + free == total for every resource,");
    println!("                       customer reservations match table usage)");
}
