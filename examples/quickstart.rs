//! Quickstart: create a speculation-friendly tree, start its maintenance
//! thread, and use it as a concurrent ordered map from several threads.
//!
//! Run with `cargo run --release --example quickstart`.

use std::sync::Arc;

use speculation_friendly_tree::prelude::*;

fn main() {
    // One STM instance coordinates every transactional structure.
    let stm = Stm::default_config();

    // The optimized speculation-friendly tree (the paper's Algorithm 2) plus
    // its background maintenance (rotator) thread.
    let tree = Arc::new(OptSpecFriendlyTree::new());
    let maintenance = tree.start_maintenance(stm.register());

    // A few worker threads hammer the map with inserts, lookups and deletes.
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let mut handle = tree.register(stm.register());
            std::thread::spawn(move || {
                let base = t * 10_000;
                for i in 0..2_000u64 {
                    let key = base + i;
                    assert!(tree.insert(&mut handle, key, key * 10));
                    if i % 3 == 0 {
                        assert!(tree.delete(&mut handle, key));
                    }
                }
                // Verify this thread's slice of the key space.
                for i in 0..2_000u64 {
                    let key = base + i;
                    let expected = if i % 3 == 0 { None } else { Some(key * 10) };
                    assert_eq!(tree.get(&mut handle, key), expected);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    maintenance.stop();

    let stats = stm.stats();
    println!("keys in the map     : {}", tree.len_quiescent());
    println!("tree depth          : {}", tree.inspect().depth());
    println!("background rotations: {}", tree.stats().rotations());
    println!(
        "physical removals   : {}",
        tree.stats()
            .removals
            // sf-lint: allow(relaxed-atomic, stats read for the example's report; staleness is harmless)
            .load(std::sync::atomic::Ordering::Relaxed)
    );
    println!("commits / aborts    : {} / {}", stats.commits, stats.aborts);
    tree.inspect()
        .check_consistency()
        .expect("the tree must remain a valid BST");
    println!("consistency check   : ok");
}
