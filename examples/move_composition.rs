//! Reusability (§5.4): compose the tree's `delete` and `insert` into a new
//! atomic `move` operation without touching the library's synchronization
//! internals, and show that concurrent movers never lose or duplicate a
//! value.
//!
//! Run with `cargo run --release --example move_composition`.

use std::sync::Arc;

use speculation_friendly_tree::prelude::*;

const SLOTS: u64 = 64;
const MOVES_PER_THREAD: u64 = 2_000;

fn main() {
    let stm = Stm::default_config();
    let tree = Arc::new(OptSpecFriendlyTree::new());
    let maintenance = tree.start_maintenance(stm.register());

    // Place one token in every even slot; odd slots start empty.
    {
        let mut handle = tree.register(stm.register());
        for slot in (0..SLOTS).step_by(2) {
            tree.insert(&mut handle, slot, slot + 1_000);
        }
    }
    let initial_tokens = tree.len_quiescent();

    // Several threads move random tokens to random free slots. Because the
    // move is one transaction (a composition of tx_delete + tx_insert), a
    // token can never be observed in two slots, nor vanish.
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let mut handle = tree.register(stm.register());
            std::thread::spawn(move || {
                let mut moved = 0u64;
                let mut state = 0x9e3779b97f4a7c15u64 ^ t;
                let mut rng = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _ in 0..MOVES_PER_THREAD {
                    let from = rng() % SLOTS;
                    let to = rng() % SLOTS;
                    if tree.move_entry(&mut handle, from, to) {
                        moved += 1;
                    }
                }
                moved
            })
        })
        .collect();
    let total_moves: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    maintenance.stop();

    let final_tokens = tree.len_quiescent();
    println!("tokens before        : {initial_tokens}");
    println!("tokens after         : {final_tokens}");
    println!("successful moves     : {total_moves}");
    println!("aborts               : {}", stm.stats().aborts);
    assert_eq!(
        initial_tokens, final_tokens,
        "moves must neither create nor destroy tokens"
    );
    tree.inspect().check_consistency().unwrap();
    println!("invariant            : token count preserved, tree consistent");
}
