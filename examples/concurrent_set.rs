//! The synchrobench-style integer-set micro-benchmark from §5.2, run on all
//! five tree variants with a 10%-update workload, printing a small comparison
//! table (a miniature of Figure 3).
//!
//! Run with `cargo run --release --example concurrent_set`.

use std::sync::Arc;
use std::time::Duration;

use speculation_friendly_tree::baselines::{AvlTree, NoRestructureTree, RedBlackTree};
use speculation_friendly_tree::prelude::*;
use speculation_friendly_tree::workloads::{populate, run_workload};

fn bench<M>(name: &str, tree: Arc<M>, maintenance: Option<sf_tree::MaintenanceHandle>)
where
    M: TxMap + Send + Sync + 'static,
    M::Handle: Send + 'static,
{
    let stm = Stm::default_config();
    let config = WorkloadConfig::paper_default()
        .with_size(1 << 10)
        .with_threads(4)
        .with_update_ratio(0.10)
        .with_run(RunLength::Timed(Duration::from_millis(250)));
    populate(&stm, tree.as_ref(), &config);
    let result = run_workload(&stm, &tree, &config);
    drop(maintenance);
    println!(
        "{name:<12} {:>8.3} ops/us   abort-ratio {:>5.1}%   max tracked reads/op {}",
        result.ops_per_microsecond(),
        100.0 * result.abort_ratio(),
        result.stm.max_reads_per_op
    );
}

fn main() {
    println!("integer-set micro-benchmark: 1024 keys, 4 threads, 10% effective updates, 250 ms\n");
    // NOTE: the maintenance thread needs the *same* STM as the workers, so we
    // build trees and maintenance in the helper where the STM lives... except
    // the speculation-friendly trees, which are set up here explicitly.
    {
        let stm = Stm::default_config();
        let tree = Arc::new(OptSpecFriendlyTree::new());
        let config = WorkloadConfig::paper_default()
            .with_size(1 << 10)
            .with_threads(4)
            .with_update_ratio(0.10)
            .with_run(RunLength::Timed(Duration::from_millis(250)));
        populate(&stm, tree.as_ref(), &config);
        let maintenance = tree.start_maintenance(stm.register());
        let result = run_workload(&stm, &tree, &config);
        maintenance.stop();
        println!(
            "{:<12} {:>8.3} ops/us   abort-ratio {:>5.1}%   max tracked reads/op {}",
            "OptSFtree",
            result.ops_per_microsecond(),
            100.0 * result.abort_ratio(),
            result.stm.max_reads_per_op
        );
    }
    {
        let stm = Stm::default_config();
        let tree = Arc::new(SpecFriendlyTree::new());
        let config = WorkloadConfig::paper_default()
            .with_size(1 << 10)
            .with_threads(4)
            .with_update_ratio(0.10)
            .with_run(RunLength::Timed(Duration::from_millis(250)));
        populate(&stm, tree.as_ref(), &config);
        let maintenance = tree.start_maintenance(stm.register());
        let result = run_workload(&stm, &tree, &config);
        maintenance.stop();
        println!(
            "{:<12} {:>8.3} ops/us   abort-ratio {:>5.1}%   max tracked reads/op {}",
            "SFtree",
            result.ops_per_microsecond(),
            100.0 * result.abort_ratio(),
            result.stm.max_reads_per_op
        );
    }
    bench("RBtree", Arc::new(RedBlackTree::new()), None);
    bench("AVLtree", Arc::new(AvlTree::new()), None);
    bench("NRtree", Arc::new(NoRestructureTree::new()), None);
    println!("\nExpected shape: the two speculation-friendly variants keep the max tracked reads per operation small");
    println!("while the RB/AVL baselines' grow with contention (Table 1 / Figure 3 in the paper).");
}
