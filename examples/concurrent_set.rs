//! The synchrobench-style integer-set micro-benchmark from §5.2, run on
//! every registered backend with a 10%-update workload, printing a small
//! comparison table (a miniature of Figure 3).
//!
//! Run with `cargo run --release --example concurrent_set`. Override the
//! compared structures with `SF_STRUCTURES` (comma/space-separated registry
//! names, e.g. `SF_STRUCTURES=sftree-opt,sftree-opt-sharded8`).

use std::time::Duration;

use speculation_friendly_tree::prelude::*;
use speculation_friendly_tree::workloads::{
    parse_structure_list, populate_and_run_backend, Backend,
};

fn main() {
    println!("integer-set micro-benchmark: 1024 keys, 4 threads, 10% effective updates, 250 ms\n");
    let names: Vec<String> = std::env::var("SF_STRUCTURES")
        .ok()
        .map(|s| parse_structure_list(&s))
        .filter(|names| !names.is_empty())
        .unwrap_or_else(|| {
            [
                "sftree-opt",
                "sftree",
                "rbtree",
                "avl",
                "nrtree",
                "sftree-opt-sharded4",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect()
        });
    let config = WorkloadConfig::paper_default()
        .with_size(1 << 10)
        .with_threads(4)
        .with_update_ratio(0.10)
        .with_run(RunLength::Timed(Duration::from_millis(250)));
    for name in &names {
        // The registry wires up each backend's STM instance(s) and
        // maintenance thread(s); dropping the backend tears them down.
        let backend = match Backend::build(name, StmConfig::ctl()) {
            Ok(backend) => backend,
            Err(error) => {
                eprintln!("skipping: {error}");
                continue;
            }
        };
        let result = populate_and_run_backend(&backend, &config);
        println!(
            "{:<22} {:>8.3} ops/us   abort-ratio {:>5.1}%   max tracked reads/op {}",
            result.structure,
            result.ops_per_microsecond(),
            100.0 * result.abort_ratio(),
            result.stm.max_reads_per_op
        );
    }
    println!("\nExpected shape: the two speculation-friendly variants keep the max tracked reads per operation small");
    println!("while the RB/AVL baselines' grow with contention (Table 1 / Figure 3 in the paper);");
    println!("the sharded variant trades single-thread latency for per-shard clocks and rotators.");
}
